"""Unit tests for COL stratification."""

import pytest

from repro.budget import Budget
from repro.deductive.ast import ColProgram, ConstD, FuncLit, FuncT, PredLit, Rule, TupD
from repro.deductive.stratify import dependency_edges, run_stratified, stratify
from repro.errors import StratificationError, is_undefined
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal


def _db(**instances):
    schema = Schema({name: parse_type("U") for name in instances})
    return Database(schema, instances)


class TestDependencyEdges:
    def test_positive_and_negative(self):
        program = ColProgram(
            [
                Rule(PredLit("P", "x"), [PredLit("R", "x")]),
                Rule(
                    PredLit("Q", "x"),
                    [PredLit("R", "x"), PredLit("P", "x", positive=False)],
                ),
            ]
        )
        edges = dependency_edges(program)
        assert (("pred", "R"), ("pred", "P"), False) in edges
        assert (("pred", "P"), ("pred", "Q"), True) in edges

    def test_function_value_term_is_negative_edge(self):
        program = ColProgram(
            [
                Rule(FuncLit("F", ConstD("a"), "x"), [PredLit("R", "x")]),
                Rule(
                    PredLit("P", FuncT("F", ConstD("a"))),
                    [PredLit("R", "x")],
                ),
            ]
        )
        edges = dependency_edges(program)
        assert (("func", "F"), ("pred", "P"), True) in edges

    def test_membership_literal_is_positive_edge(self):
        program = ColProgram(
            [
                Rule(PredLit("P", "e"), [FuncLit("F", "a", "e")]),
            ]
        )
        edges = dependency_edges(program)
        assert (("func", "F"), ("pred", "P"), False) in edges


class TestStratify:
    def test_two_strata(self):
        program = ColProgram(
            [
                Rule(PredLit("P", "x"), [PredLit("R", "x")]),
                Rule(
                    PredLit("ANS", "x"),
                    [PredLit("R", "x"), PredLit("P", "x", positive=False)],
                ),
            ]
        )
        strata = stratify(program)
        assert len(strata) == 2

    def test_recursion_through_membership_allowed(self):
        # The Theorem 5.1 counter: F defined in terms of its own members.
        program = ColProgram(
            [
                Rule(
                    FuncLit("F", ConstD("a"), SetDHelper()),
                    [FuncLit("F", ConstD("a"), "u")],
                ),
                Rule(PredLit("ANS", "x"), [PredLit("R", "x")]),
            ]
        )
        stratify(program)  # must not raise

    def test_negative_cycle_rejected(self):
        program = ColProgram(
            [
                Rule(
                    PredLit("win", "x"),
                    [
                        PredLit("move", TupD(["x", "y"])),
                        PredLit("win", "y", positive=False),
                    ],
                )
            ]
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_function_completion_cycle_rejected(self):
        # F's definition uses F's *value* as a term: no stratification.
        program = ColProgram(
            [
                Rule(
                    FuncLit("F", ConstD("a"), FuncT("F", ConstD("a"))),
                    [PredLit("R", "x")],
                ),
            ]
        )
        with pytest.raises(StratificationError):
            stratify(program)


def SetDHelper():
    from repro.deductive.ast import SetD

    return SetD(["u"])


class TestRunStratified:
    def test_negation_against_lower_stratum(self):
        program = ColProgram(
            [
                Rule(PredLit("small", ConstD(1))),
                Rule(
                    PredLit("ANS", "x"),
                    [PredLit("R", "x"), PredLit("small", "x", positive=False)],
                ),
            ]
        )
        out = run_stratified(program, _db(R={1, 2, 3}))
        assert out == SetVal([Atom(2), Atom(3)])

    def test_divergence_is_undefined(self):
        program = ColProgram(
            [
                Rule(
                    FuncLit("F", ConstD("a"), SetDHelper()),
                    [FuncLit("F", ConstD("a"), "u")],
                ),
                Rule(FuncLit("F", ConstD("a"), ConstD("a"))),
                Rule(PredLit("ANS", "e"), [FuncLit("F", ConstD("a"), "e")]),
            ]
        )
        out = run_stratified(program, _db(R={1}), Budget(facts=100))
        assert is_undefined(out)

    def test_empty_answer_predicate(self):
        program = ColProgram(
            [Rule(PredLit("other", "x"), [PredLit("R", "x")])],
            answer="ANS",
        )
        assert run_stratified(program, _db(R={1})) == SetVal([])

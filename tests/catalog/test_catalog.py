"""Catalog lifecycle: registry, memoized profile, incremental
migration across commits, and the actuals feedback loop."""

import gc

from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog, RelStats
from repro.catalog.catalog import CORRECTION_MAX, CORRECTION_MIN
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.store.tx import apply_ops
from repro.model.values import Atom, Tup


SCHEMA = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})


def _db(pairs=(("a", "b"), ("b", "c")), singles=("a",)):
    return Database.from_plain(SCHEMA, R=list(pairs), S=list(singles))


class TestRegistry:
    def test_same_database_same_catalog(self):
        database = _db()
        assert Catalog.for_database(database) is Catalog.for_database(database)

    def test_lookup_without_registration_is_none(self):
        assert Catalog.lookup(_db()) is None

    def test_equal_databases_keep_separate_catalogs(self):
        first, second = _db(), _db()
        assert first == second
        assert Catalog.for_database(first) is not Catalog.for_database(second)

    def test_entries_evict_when_database_is_collected(self):
        from repro.catalog import catalog as module

        database = _db(pairs=[("evict", "me")], singles=["evict"])
        key = id(database)
        Catalog.for_database(database)
        assert key in module._REGISTRY
        del database
        gc.collect()
        assert key not in module._REGISTRY


class TestProfile:
    def test_profile_matches_instances(self):
        database = _db()
        profile = Catalog.for_database(database).profile()
        assert profile["sizes"] == {"R": 2, "S": 1}
        assert profile["total_facts"] == 3
        assert profile["adom"] == 3
        assert profile["max_depth"] >= 1

    def test_base_profile_is_memoized(self):
        database = _db()
        catalog = Catalog.for_database(database)
        catalog.profile()
        first = catalog._base_profile
        catalog.profile()
        assert catalog._base_profile is first

    def test_est_sizes_track_corrections(self):
        database = _db()
        catalog = Catalog.for_database(database)
        assert catalog.profile()["est_sizes"] == {"R": 2, "S": 1}
        catalog.observe("R", est=1, actual=4)  # drifts toward 400%
        profile = catalog.profile()
        assert profile["est_sizes"]["R"] > profile["sizes"]["R"]
        assert profile["est_sizes"]["S"] == 1
        assert profile["corrections"] == {"R": catalog.correction("R")}

    def test_rel_stats_are_lazy_and_cached(self):
        database = _db()
        catalog = Catalog.for_database(database)
        assert catalog.computed() == ()
        stats = catalog.rel("R")
        assert isinstance(stats, RelStats)
        assert stats.size == 2
        assert catalog.computed() == ("R",)
        assert catalog.rel("R") is stats


class TestFeedback:
    def test_observation_is_clamped(self):
        over, under = _db(), _db()
        catalog = Catalog.for_database(over)
        catalog.observe("R", est=1, actual=10**6)
        assert catalog.correction("R") == (100 + CORRECTION_MAX) // 2
        catalog = Catalog.for_database(under)
        catalog.observe("R", est=10**6, actual=0)
        assert catalog.correction("R") == (100 + CORRECTION_MIN) // 2

    def test_ewma_converges_without_whipsaw(self):
        database = _db()
        catalog = Catalog.for_database(database)
        factors = [catalog.observe("R", est=2, actual=4) for _ in range(6)]
        assert factors[0] == 150  # halfway from 100 toward 200
        assert factors == sorted(factors)  # monotone approach
        assert factors[-1] <= 200

    def test_reset_feedback(self):
        database = _db()
        catalog = Catalog.for_database(database)
        catalog.observe("R", est=1, actual=3)
        assert catalog.feedback()
        catalog.reset_feedback()
        assert catalog.feedback() == {}
        assert catalog.profile()["corrections"] == {}

    def test_snapshot_is_json_ready(self):
        import json

        database = _db()
        catalog = Catalog.for_database(database)
        catalog.rel("R")
        catalog.observe("R", est=1, actual=3)
        snapshot = catalog.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["relations"]["R"]["size"] == 2
        assert "R" in snapshot["corrections"]


class TestMigrate:
    def test_untouched_relations_share_stats_objects(self):
        database = _db()
        catalog = Catalog.for_database(database)
        r_stats, s_stats = catalog.rel("R"), catalog.rel("S")
        new_db, _ = apply_ops(
            database, asserts={"R": [Tup([Atom("c"), Atom("d")])]}
        )
        migrated = Catalog.for_database(new_db)
        assert migrated.rel("S") is s_stats  # untouched: shared
        assert migrated.rel("R") is not r_stats  # touched: replayed copy
        assert r_stats.size == 2  # predecessor stats unharmed

    def test_delta_replay_matches_cold_rescan(self):
        database = _db()
        Catalog.for_database(database).rel("R")
        new_db, _ = apply_ops(
            database,
            asserts={"R": [Tup([Atom("c"), Atom("d")])]},
            retracts={"R": [Tup([Atom("a"), Atom("b")])]},
        )
        migrated = Catalog.for_database(new_db).rel("R")
        rescanned = RelStats.from_facts(new_db["R"].items)
        assert migrated.snapshot() == rescanned.snapshot()

    def test_corrections_survive_commits(self):
        database = _db()
        Catalog.for_database(database).observe("R", est=1, actual=3)
        factor = Catalog.for_database(database).correction("R")
        new_db, _ = apply_ops(database, asserts={"S": [Atom("z")]})
        assert Catalog.for_database(new_db).correction("R") == factor

    def test_unmaterialised_relations_stay_lazy(self):
        database = _db()
        Catalog.for_database(database)  # no rel() calls
        new_db, _ = apply_ops(database, asserts={"S": [Atom("z")]})
        assert Catalog.for_database(new_db).computed() == ()


@st.composite
def _renaming_case(draw):
    labels = st.integers(min_value=0, max_value=6)
    pairs = draw(st.lists(st.tuples(labels, labels), min_size=1, max_size=16))
    shift = draw(st.integers(min_value=1, max_value=5))
    return pairs, shift


class TestIsomorphismInvariance:
    @given(case=_renaming_case())
    @settings(max_examples=40, deadline=None)
    def test_estimates_are_invariant_under_atom_renaming(self, case):
        """Isomorphic databases (related by a bijective atom renaming)
        produce identical profiles, relation statistics, and therefore
        identical estimates and chosen plans — cost never depends on
        *which* atoms a database mentions, only on their pattern."""
        pairs, shift = case
        rename = lambda n: n + 100 * shift  # noqa: E731 - bijection on labels
        original = Database.from_plain(
            SCHEMA,
            R=list(dict.fromkeys(pairs)),
            S=list(dict.fromkeys(a for a, _ in pairs)),
        )
        image = Database.from_plain(
            SCHEMA,
            R=[(rename(a), rename(b)) for a, b in dict.fromkeys(pairs)],
            S=list(dict.fromkeys(rename(a) for a, _ in pairs)),
        )
        first = Catalog.for_database(original)
        second = Catalog.for_database(image)
        for key in ("sizes", "total_facts", "adom", "max_depth"):
            assert first.profile()[key] == second.profile()[key]
        for name in ("R", "S"):
            assert (
                first.rel(name).snapshot() == second.rel(name).snapshot()
            )

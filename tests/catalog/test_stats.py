"""RelStats: exact sketch maintenance, order- and seed-independence.

The sketches are counters keyed by ``struct_hash``, so every derived
number (distinct counts, mcv counts, depth and atom aggregates) must be
an exact function of the extent *as a set* — independent of insertion
order, of interleaved retracts, and of ``PYTHONHASHSEED``.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import RelStats
from repro.model.values import Atom, NamedTup, SetVal, Tup


def _pair(left, right):
    return Tup([Atom(left), Atom(right)])


PAIRS = [_pair("a", "b"), _pair("b", "c"), _pair("c", "b"), _pair("a", "c")]


class TestMaintenance:
    def test_empty_extent(self):
        stats = RelStats()
        assert stats.size == 0
        assert stats.distinct(None) == 0
        assert stats.mcv_count(0) == 0
        assert stats.max_depth == 0
        assert stats.atom_set() == frozenset()

    def test_single_fact(self):
        stats = RelStats.from_facts([_pair("a", "b")])
        assert stats.size == 1
        assert stats.distinct(None) == 1
        assert stats.distinct(0) == stats.distinct(1) == 1
        assert stats.mcv_count(0) == 1

    def test_per_position_distincts(self):
        stats = RelStats.from_facts(PAIRS)
        assert stats.size == 4
        assert stats.distinct(None) == 4  # all facts distinct
        assert stats.distinct(0) == 3  # a, b, c
        assert stats.distinct(1) == 2  # b, c
        assert stats.mcv_count(0) == 2  # 'a' appears twice
        assert stats.mcv_fraction_percent(0) == 50

    def test_named_positions_for_bk_extents(self):
        stats = RelStats.from_facts(
            [
                NamedTup({"A": Atom(1), "B": Atom(2)}),
                NamedTup({"A": Atom(1), "B": Atom(3)}),
            ]
        )
        assert stats.distinct("A") == 1
        assert stats.distinct("B") == 2
        assert stats.positions() == ("A", "B")

    def test_positions_sort_indexes_before_names(self):
        stats = RelStats()
        stats.add(_pair("a", "b"))
        stats.add(NamedTup({"A": Atom(1)}))
        assert stats.positions() == (0, 1, "A")

    def test_remove_is_exact_inverse_of_add(self):
        stats = RelStats.from_facts(PAIRS)
        stats.add(_pair("z", "z"))
        stats.remove(_pair("z", "z"))
        reference = RelStats.from_facts(PAIRS)
        assert stats.snapshot() == reference.snapshot()

    def test_max_depth_survives_retracts(self):
        shallow = _pair("a", "b")
        deep = SetVal([SetVal([Atom("a")])])
        stats = RelStats.from_facts([shallow, deep])
        assert stats.max_depth == deep.depth
        stats.remove(deep)
        assert stats.max_depth == shallow.depth

    def test_atom_counts_survive_retracts(self):
        stats = RelStats.from_facts([_pair("a", "b"), _pair("a", "c")])
        stats.remove(_pair("a", "c"))
        assert stats.atom_set() == frozenset({Atom("a"), Atom("b")})

    def test_copy_is_independent(self):
        stats = RelStats.from_facts(PAIRS)
        duplicate = stats.copy()
        duplicate.add(_pair("x", "y"))
        assert stats.size == 4 and duplicate.size == 5
        assert stats.distinct(0) == 3 and duplicate.distinct(0) == 4

    def test_snapshot_is_json_ready(self):
        import json

        snapshot = RelStats.from_facts(PAIRS).snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["size"] == 4
        assert snapshot["distinct"] == {"0": 3, "1": 2}


@st.composite
def _fact_multiset(draw):
    labels = st.integers(min_value=0, max_value=5)
    return draw(
        st.lists(st.tuples(labels, labels), min_size=0, max_size=24)
    )


class TestOrderInvariance:
    @given(pairs=_fact_multiset(), seed=st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_never_matters(self, pairs, seed):
        """Any permutation of (add, interleaved add+remove) histories
        ending in the same extent yields identical statistics."""
        facts = [_pair(a, b) for a, b in dict.fromkeys(pairs)]
        shuffled = list(facts)
        seed.shuffle(shuffled)
        stats = RelStats.from_facts(shuffled)
        # An interleaved history: add everything twice as noise, then
        # retract the noise — the sketches must come back exactly.
        noisy = RelStats()
        for fact in shuffled:
            noisy.add(fact)
        for fact in facts:
            noisy.add(fact)
        for fact in facts:
            noisy.remove(fact)
        reference = RelStats.from_facts(facts)
        assert stats.snapshot() == reference.snapshot()
        assert noisy.snapshot() == reference.snapshot()

    @given(pairs=_fact_multiset(), offset=st.integers(min_value=1, max_value=9))
    @settings(max_examples=50, deadline=None)
    def test_isomorphic_extents_have_identical_statistics(
        self, pairs, offset
    ):
        """Database isomorphism (a bijective atom renaming) preserves
        every derived statistic: sizes, per-position distinct and mcv
        counts, depth histograms.  Only the atom identities differ."""
        facts = [_pair(a, b) for a, b in dict.fromkeys(pairs)]
        renamed = [
            _pair(a + 1000 * offset, b + 1000 * offset)
            for a, b in dict.fromkeys(pairs)
        ]
        original = RelStats.from_facts(facts)
        image = RelStats.from_facts(renamed)
        assert original.size == image.size
        for key in (None, 0, 1):
            assert original.distinct(key) == image.distinct(key)
            assert original.mcv_count(key) == image.mcv_count(key)
        assert original.max_depth == image.max_depth
        assert len(original.atom_set()) == len(image.atom_set())

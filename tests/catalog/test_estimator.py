"""The shared estimator: extremes, caps, and order-independence.

These pin the integer arithmetic every consumer (SIP orderer, BK tail
estimates, planner join products) now shares — in particular the three
regimes of :func:`bucket_estimate`: empty extents estimate 0, fully
keyed probes estimate 1, and huge products saturate at ``EST_CAP``
instead of overflowing EXPLAIN output.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import (
    EST_CAP,
    FuncStats,
    RelStats,
    bucket_estimate,
    cap_estimate,
    filter_estimate,
    join_product,
    seed_estimate,
    size_of,
)
from repro.catalog.policy import COST_CAP, DELTA_FRACTION
from repro.model.values import Atom, Tup


def _pairs(rows):
    return RelStats.from_facts(
        [Tup([Atom(a), Atom(b)]) for a, b in rows]
    )


class TestBucketEstimate:
    def test_empty_extent_estimates_zero(self):
        assert bucket_estimate(RelStats(), determined=(0,)) == 0
        assert bucket_estimate(0, determined=(0,)) == 0

    def test_single_fact_fully_determined_estimates_one(self):
        stats = _pairs([("a", "b")])
        assert bucket_estimate(stats, determined=(None,)) == 1

    def test_undetermined_probe_is_the_extent_size(self):
        stats = _pairs([("a", "b"), ("b", "c"), ("c", "d")])
        assert bucket_estimate(stats) == 3

    def test_unique_key_estimates_one(self):
        stats = _pairs([("a", 1), ("b", 2), ("c", 3), ("d", 4)])
        assert stats.distinct(0) == 4
        assert bucket_estimate(stats, determined=(0,)) == 1

    def test_constant_column_estimates_full_extent(self):
        stats = _pairs([("k", 1), ("k", 2), ("k", 3), ("k", 4)])
        assert stats.distinct(0) == 1
        assert bucket_estimate(stats, determined=(0,)) == 4

    def test_average_bucket_size(self):
        # 6 facts, 3 distinct keys at position 0 -> buckets average 2.
        stats = _pairs([("a", i) for i in range(2)]
                       + [("b", i) for i in range(2)]
                       + [("c", i) for i in range(2)])
        assert bucket_estimate(stats, determined=(0,)) == 2

    def test_plain_sizes_fall_back_to_delta_fraction(self):
        assert bucket_estimate(40, determined=(0,)) == 40 // DELTA_FRACTION
        assert bucket_estimate(40, determined=(0, 1)) == 40 // DELTA_FRACTION**2

    def test_saturates_at_est_cap(self):
        assert cap_estimate(EST_CAP * 3) == EST_CAP
        assert bucket_estimate(EST_CAP * 3) == EST_CAP
        # Even a discounted bucket saturates once it crosses the cap.
        huge = EST_CAP * 2 * DELTA_FRACTION
        assert bucket_estimate(huge, determined=(0,)) == EST_CAP

    def test_func_stats_probe(self):
        graph = FuncStats(size=12, args=6)  # 12 pairs over 6 arguments
        assert bucket_estimate(graph, determined=(None,)) == 2
        assert size_of(graph) == 12

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=20,
        ),
        order=st.permutations([None, 0, 1]),
    )
    @settings(max_examples=50, deadline=None)
    def test_determined_order_never_matters(self, rows, order):
        """One product, one division: permuting the determined keys
        cannot change the estimate through rounding order."""
        stats = _pairs(dict.fromkeys(rows))
        baseline = bucket_estimate(stats, determined=(None, 0, 1))
        assert bucket_estimate(stats, determined=tuple(order)) == baseline


class TestHelpers:
    def test_filter_estimate_extremes(self):
        assert filter_estimate(0) == 0
        assert filter_estimate(1) == 1  # halved, rounded up
        assert filter_estimate(5) == 3

    def test_seed_estimate_has_floor_one(self):
        assert seed_estimate(0) == 1
        assert seed_estimate(1) == 1
        assert seed_estimate(4 * DELTA_FRACTION) == 4

    def test_join_product_discounts_later_factors(self):
        # Narrowest extent drives; later ones are index probes.
        assert join_product([3]) == 4
        assert join_product([8, 3]) == 4 * max(9 // DELTA_FRACTION, 1)

    def test_join_product_saturates_at_cost_cap(self):
        assert join_product([COST_CAP, COST_CAP, COST_CAP]) == COST_CAP

    def test_join_product_accepts_stats_objects(self):
        stats = _pairs([("a", "b"), ("b", "c"), ("c", "d")])
        assert join_product([stats]) == join_product([3])

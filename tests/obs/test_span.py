"""Span tracing: the no-op fast path, parenting, sampling, the cap."""

import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    SpanRecorder,
    disable_tracing,
    enable_tracing,
    get_recorder,
    span,
    tracing,
)


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    """These tests own the process-wide recorder state."""
    disable_tracing()
    yield
    disable_tracing()


class TestNoop:
    def test_span_is_the_shared_noop_when_disabled(self):
        assert get_recorder() is None
        assert span("anything", key="value") is NOOP_SPAN

    def test_noop_span_accepts_attrs_and_nesting(self):
        with span("outer") as outer:
            outer.set(backend="x")
            with span("inner"):
                pass


class TestRecording:
    def test_parent_links(self):
        with tracing() as recorder:
            with span("root"):
                with span("child"):
                    with span("grandchild"):
                        pass
        spans = {entry["name"]: entry for entry in recorder.tail()}
        assert spans["root"]["parent_id"] is None
        assert spans["child"]["parent_id"] == spans["root"]["span_id"]
        assert spans["grandchild"]["parent_id"] == spans["child"]["span_id"]

    def test_finish_order_and_durations(self):
        with tracing() as recorder:
            with span("root"):
                with span("child"):
                    pass
        names = [entry["name"] for entry in recorder.tail()]
        assert names == ["child", "root"]  # completion order
        for entry in recorder.tail():
            assert entry["duration"] is not None and entry["duration"] >= 0

    def test_attrs_round_trip(self):
        with tracing() as recorder:
            with span("run", db="main") as active:
                active.set(backend="col-stratified", cached=False)
        (entry,) = recorder.tail()
        assert entry["attrs"] == {
            "backend": "col-stratified",
            "cached": False,
            "db": "main",
        }

    def test_exception_records_error_attr(self):
        with tracing() as recorder:
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("no")
        (entry,) = recorder.tail()
        assert entry["attrs"]["error"] == "ValueError"

    def test_threads_get_independent_stacks(self):
        with tracing() as recorder:
            done = threading.Event()

            def other():
                with span("other-root"):
                    done.set()

            with span("main-root"):
                thread = threading.Thread(target=other)
                thread.start()
                thread.join()
            assert done.is_set()
        roots = [e for e in recorder.tail() if e["parent_id"] is None]
        assert {e["name"] for e in roots} == {"other-root", "main-root"}


class TestSampling:
    def test_sample_every_keeps_each_nth_root(self):
        with tracing(sample_every=3) as recorder:
            for index in range(9):
                with span("root", index=index):
                    with span("child"):
                        pass
        kept = [e["attrs"]["index"] for e in recorder.tail() if e["name"] == "root"]
        assert kept == [0, 3, 6]  # deterministic: a counter, not a PRNG
        # Children follow their root's decision exactly.
        children = [e for e in recorder.tail() if e["name"] == "child"]
        assert len(children) == 3

    def test_sample_every_zero_records_nothing(self):
        with tracing(sample_every=0) as recorder:
            for _ in range(5):
                with span("root"):
                    pass
        assert recorder.tail() == []
        assert recorder.stats()["roots_seen"] == 5
        assert recorder.stats()["dropped"] == 5

    def test_suppressed_root_suppresses_children_for_free(self):
        with tracing(sample_every=2) as recorder:
            with span("a"):
                with span("a.child"):
                    pass
            with span("b"):
                with span("b.child"):
                    pass
        names = {e["name"] for e in recorder.tail()}
        assert names == {"a", "a.child"}


class TestBounds:
    def test_buffer_keeps_most_recent_cap_entries(self):
        # Mirrors TraceLog's cap semantics: old entries fall off the
        # front, len never exceeds the cap.
        with tracing(max_entries=4) as recorder:
            for index in range(10):
                with span("s", index=index):
                    pass
        assert len(recorder) == 4
        kept = [e["attrs"]["index"] for e in recorder.tail()]
        assert kept == [6, 7, 8, 9]

    def test_tail_limit(self):
        with tracing(max_entries=8) as recorder:
            for index in range(5):
                with span("s", index=index):
                    pass
        assert [e["attrs"]["index"] for e in recorder.tail(2)] == [3, 4]

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_entries=0)
        with pytest.raises(ValueError):
            SpanRecorder(sample_every=-1)


class TestProcessWideToggle:
    def test_enable_disable(self):
        recorder = enable_tracing()
        try:
            assert get_recorder() is recorder
            assert enable_tracing() is recorder  # idempotent
            with span("visible"):
                pass
            assert [e["name"] for e in recorder.tail()] == ["visible"]
        finally:
            disable_tracing()
        assert get_recorder() is None

    def test_tracing_restores_previous_recorder(self):
        outer = enable_tracing()
        try:
            with tracing() as inner:
                assert get_recorder() is inner
            assert get_recorder() is outer
        finally:
            disable_tracing()

"""Exporters: canonical JSON and the Prometheus text dump."""

import json

from repro.obs import MetricsRegistry, render_json, render_prometheus, sanitize_name


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.queries.accepted", alias="queries_accepted").inc(3)
    registry.gauge("serve.in_flight", alias="in_flight").set(1)
    registry.histogram("serve.execution_seconds", buckets=(0.1, 1.0)).observe(0.05)
    registry.register_collector(
        "db.main", lambda: {"memo": {"hits": 2}, "label": "not-a-number"}
    )
    return registry


class TestJson:
    def test_canonical_bytes(self):
        registry = populated_registry()
        text = render_json(registry)
        assert text == json.dumps(
            registry.snapshot(), sort_keys=True, separators=(",", ":")
        )
        # Deterministic across renders of the same state.
        assert render_json(registry) == text

    def test_includes_alias_keys(self):
        data = json.loads(render_json(populated_registry()))
        assert data["queries_accepted"] == data["serve.queries.accepted"] == 3


class TestPrometheus:
    def test_family_names_are_sanitised_and_prefixed(self):
        assert sanitize_name("serve.queries.accepted") == (
            "repro_serve_queries_accepted"
        )
        assert sanitize_name("9lives") == "repro__9lives"

    def test_counter_gauge_histogram_families(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_serve_queries_accepted counter" in text
        assert "repro_serve_queries_accepted 3" in text
        assert "# TYPE repro_serve_in_flight gauge" in text
        assert "# TYPE repro_serve_execution_seconds histogram" in text
        assert 'repro_serve_execution_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_serve_execution_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_serve_execution_seconds_count 1" in text

    def test_aliases_are_not_exported_twice(self):
        text = render_prometheus(populated_registry())
        assert "repro_queries_accepted" not in text
        assert text.count("repro_serve_queries_accepted 3") == 1

    def test_collector_numeric_leaves_export_untyped(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_db_main_memo_hits untyped" in text
        assert "repro_db_main_memo_hits 2" in text
        # Strings have no Prometheus representation; skipped, not mangled.
        assert "label" not in text

    def test_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")

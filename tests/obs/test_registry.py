"""The redesigned registry: aliases, collectors, the flatten/nest bridge."""

import json

import pytest

from repro.obs import MetricsRegistry, get_registry, reset_registry, set_registry
from repro.obs.metrics import flatten, nest


class TestAliases:
    def test_alias_resolves_to_the_same_instrument(self):
        registry = MetricsRegistry()
        canonical = registry.counter("serve.queries.accepted", alias="queries_accepted")
        assert registry.counter("queries_accepted") is canonical
        assert registry.counter("serve.queries.accepted") is canonical

    def test_snapshot_emits_both_keys_with_equal_values(self):
        registry = MetricsRegistry()
        registry.counter("serve.queries.accepted", alias="queries_accepted").inc(3)
        snap = registry.snapshot()
        assert snap["serve.queries.accepted"] == 3
        assert snap["queries_accepted"] == 3

    def test_alias_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a.b", alias="legacy")
        with pytest.raises(ValueError):
            registry.counter("c.d", alias="legacy")

    def test_alias_shadowing_a_metric_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ValueError):
            registry.counter("x.y", alias="taken")

    def test_kind_mismatch_through_an_alias(self):
        registry = MetricsRegistry()
        registry.counter("a.b", alias="legacy")
        with pytest.raises(TypeError):
            registry.gauge("legacy")

    def test_aliases_listing(self):
        registry = MetricsRegistry()
        registry.counter("a.b", alias="legacy")
        assert registry.aliases() == {"legacy": "a.b"}


class TestCollectors:
    def test_collector_output_flattens_under_prefix(self):
        registry = MetricsRegistry()
        registry.register_collector("db.main", lambda: {"memo": {"hits": 2}, "views": 1})
        snap = registry.snapshot()
        assert snap["db.main.memo.hits"] == 2
        assert snap["db.main.views"] == 1

    def test_collector_is_polled_fresh_each_snapshot(self):
        registry = MetricsRegistry()
        state = {"n": 0}

        def collect():
            state["n"] += 1
            return {"n": state["n"]}

        registry.register_collector("c", collect)
        assert registry.snapshot()["c.n"] == 1
        assert registry.snapshot()["c.n"] == 2

    def test_reregistering_a_prefix_replaces(self):
        registry = MetricsRegistry()
        registry.register_collector("p", lambda: {"v": 1})
        registry.register_collector("p", lambda: {"v": 2})
        assert registry.snapshot()["p.v"] == 2

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register_collector("p", lambda: {"v": 1})
        registry.unregister_collector("p")
        assert "p.v" not in registry.snapshot()

    def test_empty_prefix_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.register_collector("", dict)


class TestBridge:
    def test_flatten_nest_round_trip(self):
        nested = {
            "memo": {"hits": 3, "misses": 1},
            "views": 2,
            "empty": {},
        }
        flat = flatten("db.main", nested)
        assert flat == {
            "db.main.memo.hits": 3,
            "db.main.memo.misses": 1,
            "db.main.views": 2,
            "db.main.empty": {},
        }
        assert nest(flat, "db.main") == nested

    def test_nest_filters_by_prefix(self):
        flat = {"a.x": 1, "b.y": 2}
        assert nest(flat, "a") == {"x": 1}

    def test_nest_without_prefix_rebuilds_everything(self):
        flat = {"a.x": 1, "b": 2}
        assert nest(flat) == {"a": {"x": 1}, "b": 2}


class TestSnapshot:
    def test_snapshot_is_canonical_json_material(self):
        registry = MetricsRegistry()
        registry.counter("b.z").inc()
        registry.gauge("a.y").set(4)
        registry.histogram("c.w").observe(0.2)
        registry.register_collector("d", lambda: {"k": 1})
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)


class TestProcessWideRegistry:
    def test_get_creates_once(self):
        fresh = reset_registry()
        assert get_registry() is fresh

    def test_set_installs(self):
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is mine
            assert get_registry() is mine
        finally:
            reset_registry()

"""Registry correctness under contention (the hypothesis satellite).

The service's accounting discipline is *admit first, settle second*:
every worker increments ``accepted`` before it later increments exactly
one outcome counter.  Under that discipline, the outcome readings of a
snapshot can never exceed an ``accepted`` reading taken *after* the
snapshot returns (instruments lock independently, so the comparison
point must not precede the reads it bounds), and once the threads
join, the two sides are exactly equal.  Lost updates break either.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry

THREADS = 16
OUTCOMES = ("completed", "timed_out", "failed", "closed")


@settings(max_examples=20, deadline=None)
@given(
    per_thread=st.lists(
        st.integers(min_value=1, max_value=60),
        min_size=THREADS,
        max_size=THREADS,
    ),
    outcome_picks=st.lists(
        st.integers(min_value=0, max_value=len(OUTCOMES) - 1),
        min_size=THREADS,
        max_size=THREADS,
    ),
)
def test_no_lost_updates_and_consistent_snapshots(per_thread, outcome_picks):
    registry = MetricsRegistry()
    accepted = registry.counter("serve.queries.accepted", alias="queries_accepted")
    outcomes = {
        name: registry.counter(f"serve.queries.{name}") for name in OUTCOMES
    }
    start = threading.Barrier(THREADS + 2)  # workers + observer + main
    stop = threading.Event()
    violations = []

    def work(count, outcome):
        start.wait()
        for _ in range(count):
            accepted.inc()
            outcome.inc()

    def observe():
        start.wait()
        while not stop.is_set():
            snap = registry.snapshot()
            ceiling = accepted.value  # read strictly after the snapshot
            settled = sum(snap[f"serve.queries.{name}"] for name in OUTCOMES)
            # The alias must read the same instrument the canonical
            # name does, in the same snapshot.
            if snap["queries_accepted"] != snap["serve.queries.accepted"]:
                violations.append(("alias", snap))
                return
            if settled > ceiling:
                violations.append(("settled>accepted", snap, ceiling))
                return

    threads = [
        threading.Thread(target=work, args=(count, outcomes[OUTCOMES[pick]]))
        for count, pick in zip(per_thread, outcome_picks)
    ]
    observer = threading.Thread(target=observe)
    for thread in threads:
        thread.start()
    observer.start()
    start.wait()
    for thread in threads:
        thread.join()
    stop.set()
    observer.join()

    assert not violations, violations[0]
    final = registry.snapshot()
    assert final["serve.queries.accepted"] == sum(per_thread)
    assert (
        sum(final[f"serve.queries.{name}"] for name in OUTCOMES)
        == sum(per_thread)
    )

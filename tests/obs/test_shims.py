"""The deprecated deep-import paths still work, warning once."""

import importlib
import pathlib
import subprocess
import sys
import warnings

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _fresh_import(module_name: str):
    """Import *module_name* fresh enough to fire its module-level
    warning, then put the original module back: later tests (and
    ``monkeypatch.setattr`` string targets) must keep seeing the
    process's canonical module objects."""
    saved = sys.modules.get(module_name)
    sys.modules.pop(module_name, None)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module(module_name)
    finally:
        parent_name, _, child = module_name.rpartition(".")
        if saved is not None:
            sys.modules[module_name] = saved
            if parent_name in sys.modules:
                setattr(sys.modules[parent_name], child, saved)
        else:
            sys.modules.pop(module_name, None)
    return module, [w for w in caught if w.category is DeprecationWarning]


class TestServeMetricsShim:
    def test_warns_and_reexports_the_same_objects(self):
        shim, deprecations = _fresh_import("repro.serve.metrics")
        assert deprecations and "repro.obs" in str(deprecations[0].message)
        import repro.obs.metrics as canonical

        assert shim.Counter is canonical.Counter
        assert shim.Gauge is canonical.Gauge
        assert shim.Histogram is canonical.Histogram
        assert shim.MetricsRegistry is canonical.MetricsRegistry
        assert shim.DEFAULT_BUCKETS is canonical.DEFAULT_BUCKETS


class TestServeTraceShim:
    def test_warns_and_reexports_the_same_objects(self):
        shim, deprecations = _fresh_import("repro.serve.trace")
        assert deprecations and "repro.obs" in str(deprecations[0].message)
        import repro.obs.trace as canonical

        assert shim.RequestTrace is canonical.RequestTrace
        assert shim.TraceLog is canonical.TraceLog


class TestPackageSurface:
    def test_serve_package_does_not_warn(self):
        # repro.serve itself imports from repro.obs directly — only the
        # deprecated deep paths fire the warning.  A subprocess keeps
        # this hermetic: reloading ``repro.serve`` in-process would
        # desync the package object other tests already hold.
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.serve",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr

    def test_deep_import_warns_in_a_fresh_process(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.serve.metrics",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "DeprecationWarning" in proc.stderr
        assert "repro.obs" in proc.stderr

    def test_top_level_exports(self):
        import repro

        for name in (
            "QueryService",
            "ServeClient",
            "DurableDatabase",
            "Store",
            "Catalog",
            "MetricsRegistry",
            "SlowQueryLog",
            "enable_tracing",
            "get_registry",
            "render_prometheus",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__

"""The slow-query log: thresholding, bounded buffer, captured plans."""

import json

import pytest

from repro.obs import SlowQueryLog


class TestThreshold:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record("main", "{ x | S(x) }", 99.0) is False
        assert len(log) == 0

    def test_records_at_or_over_threshold(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.record("main", "fast", 0.005) is False
        assert log.record("main", "exact", 0.010) is True
        assert log.record("main", "slow", 0.250) is True
        assert [entry["text"] for entry in log.tail()] == ["exact", "slow"]

    def test_none_seconds_never_records(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.record("main", "unfinished", None) is False

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)


class TestRecords:
    def test_record_carries_the_physical_tree(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record(
            "main",
            "rules { ... } answer T",
            0.2,
            backend="col-stratified",
            outcome="ok",
            spent={"iterations": 4},
            physical="Fixpoint [rounds=4]\n  Scan(R) [rows_out=6]",
        )
        (entry,) = log.tail()
        assert entry["backend"] == "col-stratified"
        assert entry["outcome"] == "ok"
        assert entry["spent"] == {"iterations": 4}
        assert "Scan(R)" in entry["physical"]
        assert entry["threshold_ms"] == 0.0

    def test_to_json_round_trips(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record("main", "q", 0.1)
        assert json.loads(log.to_json())[0]["db"] == "main"


class TestBounds:
    def test_buffer_keeps_most_recent(self):
        log = SlowQueryLog(threshold_ms=0.0, max_entries=3)
        for index in range(7):
            log.record("main", f"q{index}", 0.1)
        assert [entry["text"] for entry in log.tail()] == ["q4", "q5", "q6"]
        assert log.recorded == 7  # the monotone total survives eviction
        assert log.stats() == {
            "recorded": 7,
            "buffered": 3,
            "threshold_ms": 0.0,
        }

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(max_entries=0)

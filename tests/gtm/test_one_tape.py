"""Unit tests for 1-tape GTMs and the Section 3 closing remark."""

import pytest

from repro.budget import Budget
from repro.errors import MachineError, is_undefined
from repro.gtm.machine import ALPHA, BETA
from repro.gtm.one_tape import (
    OneTapeGTM,
    duplication_is_impossible,
    run_one_tape,
)
from repro.model.encoding import BLANK
from repro.model.values import Atom


def _scanner():
    """Scan to ')' and halt (an identity-ish 1-tape machine)."""
    return OneTapeGTM(
        states={"s", "go", "h"},
        working=[],
        constants=[],
        delta={
            ("s", "("): ("go", "(", "R"),
            ("go", ALPHA): ("go", ALPHA, "R"),
            ("go", "["): ("go", "[", "R"),
            ("go", "]"): ("go", "]", "R"),
            ("go", ")"): ("h", ")", "-"),
        },
        start="s",
        halt="h",
    )


class TestValidation:
    def test_beta_meaningless(self):
        with pytest.raises(MachineError):
            OneTapeGTM(
                states={"s", "h"},
                working=[],
                constants=[],
                delta={("s", BETA): ("h", BETA, "-")},
                start="s",
                halt="h",
            )

    def test_alpha_write_requires_read(self):
        with pytest.raises(MachineError):
            OneTapeGTM(
                states={"s", "h"},
                working=[],
                constants=[],
                delta={("s", "("): ("h", ALPHA, "-")},
                start="s",
                halt="h",
            )


class TestRunner:
    def test_scan(self):
        out = run_one_tape(_scanner(), ["(", Atom(1), Atom(2), ")"])
        assert out == ["(", Atom(1), Atom(2), ")"]

    def test_stuck_is_undefined(self):
        assert is_undefined(run_one_tape(_scanner(), [")"]))

    def test_budget_is_undefined(self):
        spinner = OneTapeGTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", BLANK): ("s", BLANK, "-")},
            start="s",
            halt="h",
        )
        assert is_undefined(run_one_tape(spinner, [], Budget(steps=20)))


class TestReplicationInvariant:
    def test_holds_during_scan(self):
        # check_invariant=True raises if ever violated; completing the
        # run is the machine-checked proof probe.
        out = run_one_tape(
            _scanner(), ["(", Atom(1), ")"], check_invariant=True
        )
        assert out is not None

    def test_erasing_decreases_counts(self):
        eraser = OneTapeGTM(
            states={"s", "go", "h"},
            working=[],
            constants=[],
            delta={
                ("s", "("): ("go", "(", "R"),
                ("go", ALPHA): ("go", BLANK, "R"),
                ("go", ")"): ("h", ")", "-"),
            },
            start="s",
            halt="h",
        )
        out = run_one_tape(eraser, ["(", Atom(1), ")"], check_invariant=True)
        assert Atom(1) not in out

    def test_atom_can_move_but_not_double(self):
        # A machine shifting an atom right by one cell: reads α, blanks
        # it, then writes... it *cannot* — α may only be written where
        # it was read.  The best it can do is keep it in place.
        mover_attempt = OneTapeGTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", ALPHA): ("h", ALPHA, "R")},
            start="s",
            halt="h",
        )
        out = run_one_tape(mover_attempt, [Atom(9)], check_invariant=True)
        assert out.count(Atom(9)) == 1


class TestDuplicationImpossibility:
    def test_scanner_fails_duplicate(self):
        assert duplication_is_impossible(_scanner(), [Atom(7)])

    def test_multiple_atoms(self):
        assert duplication_is_impossible(_scanner(), [Atom(1), Atom(2)])

    def test_two_tape_machine_succeeds_for_contrast(self):
        from repro.gtm.library import duplicate_gtm
        from repro.gtm.run import gtm_query
        from repro.model.schema import Database

        gtm, schema, output_type = duplicate_gtm()
        database = Database(schema, {"R": {7}})
        out = gtm_query(gtm, database, output_type)
        # The 2-tape machine genuinely replicates the atom.
        from repro.model.values import SetVal, Tup

        assert out == SetVal([Tup([Atom(7), Atom(7)])])

"""Unit tests for Proposition 3.1's two directions."""

import pytest

from repro.budget import Budget
from repro.errors import is_undefined
from repro.gtm.compile import gtm_side_query, simulate_gtm_conventionally
from repro.gtm.library import all_machines
from repro.gtm.run import gtm_query
from repro.model.schema import Database


def _databases_for(name, schema):
    if name in ("identity", "reverse", "select_eq"):
        data = [set(), {(1, 2)}, {(1, 1), (2, 3)}, {(4, 4), (4, 5), (5, 4)}]
    else:
        data = [set(), {1}, {1, 2}, {1, 2, 3}]
    return [Database(schema, {"R": rows}) for rows in data]


class TestGtmToConventional:
    """GTM ⊑ C: the coded simulation never consults atom identity."""

    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_agreement(self, name):
        gtm, schema, output_type = all_machines()[name]
        for database in _databases_for(name, schema):
            direct = gtm_query(gtm, database, output_type)
            coded = simulate_gtm_conventionally(gtm, database, output_type)
            assert direct == coded or (is_undefined(direct) and is_undefined(coded))

    def test_budget_respected(self):
        gtm, schema, output_type = all_machines()["duplicate"]
        database = Database(schema, {"R": {1, 2, 3}})
        out = simulate_gtm_conventionally(
            gtm, database, output_type, budget=Budget(steps=3)
        )
        assert is_undefined(out)


class TestConventionalToGtm:
    """C ⊑ GTM: the encode/decode wrapping of a conventional computation."""

    def test_identity_wrapping(self, unary_db):
        out = gtm_side_query(
            lambda symbols: symbols, unary_db, unary_db.schema.rtype("R")
        )
        assert out == unary_db["R"]

    def test_wrapped_computation_sees_codes_not_atoms(self, unary_db):
        seen = []

        def probe(symbols):
            seen.extend(symbols)
            return symbols

        gtm_side_query(probe, unary_db, unary_db.schema.rtype("R"))
        from repro.model.values import Atom

        assert not any(isinstance(s, Atom) for s in seen)
        assert set("01") & set(s for s in seen if isinstance(s, str) and len(s) == 1)

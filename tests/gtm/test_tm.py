"""Unit tests for conventional Turing machines and the §2 framing."""

import pytest

from repro.budget import Budget
from repro.errors import MachineError, UNDEFINED, is_undefined
from repro.gtm.tm import (
    TM,
    atom_codes,
    decode_from_tm,
    encode_for_tm,
    halts,
    run_tm,
    tm_query,
    unary_machines,
)
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom


class TestTMValidation:
    def test_needs_valid_states(self):
        with pytest.raises(MachineError):
            TM({"s"}, {"a"}, {}, start="s", halt="missing")

    def test_tape_count_checked(self):
        with pytest.raises(MachineError):
            TM(
                {"s", "h"},
                {"a"},
                {("s", "a", "a"): ("h", ("a",), ("-",))},
                start="s",
                halt="h",
                tapes=1,
            )

    def test_alphabet_checked(self):
        with pytest.raises(MachineError):
            TM(
                {"s", "h"},
                {"a"},
                {("s", "z"): ("h", ("z",), ("-",))},
                start="s",
                halt="h",
            )


class TestRunTM:
    def test_simple_scan(self):
        machines = unary_machines()
        out = run_tm(machines["always_halts"], ["a", "a"])
        assert out == ["a", "a"]

    def test_divergence(self):
        machines = unary_machines()
        out = run_tm(machines["never_halts"], ["a"], Budget(steps=50))
        assert is_undefined(out)

    def test_stuck(self):
        tm = TM(
            {"s", "h"},
            {"a"},
            {("s", "a"): ("h", ("a",), ("-",))},
            start="s",
            halt="h",
        )
        assert is_undefined(run_tm(tm, []))  # blank has no transition


class TestHalts:
    def test_even_machine(self):
        machines = unary_machines()
        assert halts(machines["halts_iff_even"], ["a"] * 4, 100) is True
        assert halts(machines["halts_iff_even"], ["a"] * 3, 100) is None

    def test_bound_matters(self):
        machines = unary_machines()
        assert halts(machines["slow_halt"], ["a"] * 5, 3) is None
        assert halts(machines["slow_halt"], ["a"] * 5, 1000) is True


class TestEncoding:
    def test_atom_codes_fixed_width(self):
        codes = atom_codes([Atom(i) for i in range(5)])
        widths = {len(code) for code in codes.values()}
        assert len(widths) == 1
        assert len(set(codes.values())) == 5

    def test_constants_not_coded(self):
        c = Atom("c")
        codes = atom_codes([Atom(1), c], constants=[c])
        assert c not in codes

    def test_roundtrip(self):
        schema = Schema({"R": parse_type("[U, U]")})
        database = Database(schema, {"R": {(1, 2), (3, 4)}})
        order = sorted(database.adom(), key=lambda a: a.canon_key())
        symbols, codes = encode_for_tm(database, order)
        decoded = decode_from_tm(symbols, codes, parse_type("[U, U]"))
        assert decoded == database["R"]

    def test_tm_query_identity(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        out = tm_query(lambda symbols: symbols, database, parse_type("U"))
        assert out == database["R"]

    def test_tm_query_undefined(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1}})
        assert is_undefined(
            tm_query(lambda symbols: UNDEFINED, database, parse_type("U"))
        )
        assert is_undefined(
            tm_query(lambda symbols: ["garbage"], database, parse_type("U"))
        )

"""Unit tests for GTM execution and query semantics."""

import pytest

from repro.budget import Budget
from repro.errors import MachineError, is_undefined
from repro.gtm.machine import ALPHA, GTM
from repro.gtm.run import Tape, check_order_independence, gtm_query, run_gtm
from repro.model.encoding import BLANK
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal


class TestTape:
    def test_read_write(self):
        tape = Tape()
        assert tape.read() == BLANK
        tape.write("x")
        assert tape.read() == "x"

    def test_blank_write_clears(self):
        tape = Tape.from_symbols(["a", "b"])
        tape.write(BLANK)
        assert tape.read() == BLANK
        assert tape.contents() == [BLANK, "b"]

    def test_one_way_left_boundary(self):
        tape = Tape()
        tape.move("L")
        assert tape.head == 0
        tape.move("R")
        tape.move("L")
        assert tape.head == 0

    def test_contents_trims_trailing_blanks(self):
        tape = Tape.from_symbols(["a", BLANK, "b"])
        assert tape.contents() == ["a", BLANK, "b"]
        assert Tape().contents() == []


def _eraser():
    """A machine that blanks its input and halts at ')' (keeps parens)."""
    return GTM(
        states={"s", "go", "h"},
        working=[],
        constants=[],
        delta={
            ("s", "(", BLANK): ("go", "(", BLANK, "R", "-"),
            ("go", ALPHA, BLANK): ("go", BLANK, BLANK, "R", "-"),
            ("go", ")", BLANK): ("h", ")", BLANK, "-", "-"),
        },
        start="s",
        halt="h",
    )


class TestRunGtm:
    def test_erases(self):
        out = run_gtm(_eraser(), ["(", Atom(1), Atom(2), ")"])
        assert out == ["(", BLANK, BLANK, ")"]

    def test_stuck_is_undefined(self):
        out = run_gtm(_eraser(), ["[", Atom(1)])
        assert is_undefined(out)

    def test_budget_is_undefined(self):
        spinner = GTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", BLANK, BLANK): ("s", BLANK, BLANK, "-", "-")},
            start="s",
            halt="h",
        )
        assert is_undefined(run_gtm(spinner, [], Budget(steps=100)))

    def test_trace_collection(self):
        trace = []
        run_gtm(_eraser(), ["(", Atom(1), ")"], trace=trace)
        assert len(trace) == 3
        assert trace[-1][0] == "h"

    def test_immediate_halt(self):
        instant = GTM(
            states={"h"}, working=[], constants=[], delta={}, start="h", halt="h"
        )
        assert run_gtm(instant, ["(", ")"]) == ["(", ")"]


class TestGtmQuery:
    def test_decodes_output(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        out = gtm_query(_eraser(), database, parse_type("U"))
        assert out == SetVal([])

    def test_malformed_output_is_undefined(self):
        mangler = GTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", "(", BLANK): ("h", "[", BLANK, "-", "-")},
            start="s",
            halt="h",
        )
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1}})
        assert is_undefined(gtm_query(mangler, database, parse_type("U")))

    def test_explicit_order(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        out = gtm_query(
            _eraser(), database, parse_type("U"), atom_order=[Atom(2), Atom(1)]
        )
        assert out == SetVal([])


class TestOrderIndependence:
    def test_eraser_is_order_independent(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2, 3}})
        assert check_order_independence(_eraser(), database, parse_type("U"))

    def test_order_dependent_machine_caught(self):
        # Halts on the first data atom, keeping only the rest: the
        # output depends on which atom came first.
        first_dropper = GTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={
                ("s", "(", BLANK): ("h", BLANK, BLANK, "R", "-"),
            },
            start="s",
            halt="h",
        )
        # This machine outputs garbage either way; build a sharper one:
        keep_first = GTM(
            states={"s", "scan", "z", "h"},
            working=[],
            constants=[],
            delta={
                ("s", "(", BLANK): ("scan", "(", BLANK, "R", "-"),
                # keep the first atom, erase the rest
                ("scan", ALPHA, BLANK): ("z", ALPHA, BLANK, "R", "-"),
                ("z", ALPHA, BLANK): ("z", BLANK, BLANK, "R", "-"),
                ("z", ")", BLANK): ("h", ")", BLANK, "-", "-"),
                ("scan", ")", BLANK): ("h", ")", BLANK, "-", "-"),
            },
            start="s",
            halt="h",
        )
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        with pytest.raises(MachineError):
            check_order_independence(keep_first, database, parse_type("U"))

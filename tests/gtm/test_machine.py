"""Unit tests for GTM definitions and pattern matching."""

import pytest

from repro.errors import MachineError
from repro.gtm.machine import ALPHA, BETA, GTM, Step, is_working
from repro.model.values import Atom


def _minimal(delta, constants=(), working=()):
    return GTM(
        states={"s", "h"},
        working=working,
        constants=constants,
        delta=delta,
        start="s",
        halt="h",
    )


class TestValidation:
    def test_trivial_machine(self):
        gtm = _minimal({("s", "(", "("): ("h", "(", "(", "-", "-")})
        assert gtm.start == "s"

    def test_beta_requires_alpha(self):
        with pytest.raises(MachineError):
            _minimal({("s", "(", BETA): ("h", "(", BETA, "-", "-")})

    def test_beta_not_on_first_tape(self):
        with pytest.raises(MachineError):
            _minimal({("s", BETA, ALPHA): ("h", "(", "(", "-", "-")})

    def test_alpha_written_only_if_read(self):
        with pytest.raises(MachineError):
            _minimal({("s", "(", "("): ("h", ALPHA, "(", "-", "-")})

    def test_beta_written_only_if_read(self):
        with pytest.raises(MachineError):
            _minimal({("s", ALPHA, ALPHA): ("h", BETA, ALPHA, "-", "-")})

    def test_atoms_in_delta_must_be_constants(self):
        with pytest.raises(MachineError):
            _minimal({("s", Atom("c"), "("): ("h", "(", "(", "-", "-")})
        _minimal(
            {("s", Atom("c"), "("): ("h", "(", "(", "-", "-")},
            constants=[Atom("c")],
        )

    def test_halt_state_has_no_outgoing(self):
        with pytest.raises(MachineError):
            _minimal({("h", "(", "("): ("h", "(", "(", "-", "-")})

    def test_unknown_states_rejected(self):
        with pytest.raises(MachineError):
            _minimal({("ghost", "(", "("): ("h", "(", "(", "-", "-")})
        with pytest.raises(MachineError):
            _minimal({("s", "(", "("): ("ghost", "(", "(", "-", "-")})

    def test_bad_moves_rejected(self):
        with pytest.raises(MachineError):
            _minimal({("s", "(", "("): ("h", "(", "(", "X", "-")})

    def test_unknown_working_symbol_rejected(self):
        with pytest.raises(MachineError):
            _minimal({("s", "?", "("): ("h", "(", "(", "-", "-")})

    def test_punctuation_always_in_working(self):
        gtm = _minimal({})
        for symbol in ("(", ")", "[", "]", ","):
            assert symbol in gtm.working


class TestMatching:
    def test_concrete_lookup(self):
        gtm = _minimal({("s", "(", ")"): ("h", "(", ")", "-", "-")})
        step, bindings = gtm.match("s", "(", ")")
        assert step.state == "h"
        assert bindings == {}

    def test_alpha_binds_fresh_atom(self):
        gtm = _minimal({("s", ALPHA, "_"): ("h", ALPHA, ALPHA, "-", "-")})
        step, bindings = gtm.match("s", Atom("x"), "_")
        assert bindings == {ALPHA: Atom("x")}
        assert gtm.resolve(step.write2, bindings) == Atom("x")

    def test_alpha_alpha_means_equal(self):
        gtm = _minimal(
            {
                ("s", ALPHA, ALPHA): ("h", ALPHA, ALPHA, "-", "-"),
                ("s", ALPHA, BETA): ("s", ALPHA, BETA, "-", "-"),
            }
        )
        step_equal, _ = gtm.match("s", Atom("x"), Atom("x"))
        step_diff, bindings = gtm.match("s", Atom("x"), Atom("y"))
        assert step_equal.state == "h"
        assert step_diff.state == "s"
        assert bindings == {ALPHA: Atom("x"), BETA: Atom("y")}

    def test_constant_atoms_are_concrete(self):
        c = Atom("c")
        gtm = _minimal(
            {
                ("s", c, "_"): ("h", c, "_", "-", "-"),
                ("s", ALPHA, "_"): ("s", ALPHA, "_", "-", "-"),
            },
            constants=[c],
        )
        step_const, _ = gtm.match("s", c, "_")
        step_fresh, _ = gtm.match("s", Atom("other"), "_")
        assert step_const.state == "h"
        assert step_fresh.state == "s"

    def test_const_alpha_pattern(self):
        gtm = _minimal({("s", "(", ALPHA): ("h", "(", ALPHA, "-", "-")})
        step, bindings = gtm.match("s", "(", Atom("z"))
        assert bindings == {ALPHA: Atom("z")}

    def test_no_transition_returns_none(self):
        gtm = _minimal({})
        assert gtm.match("s", "(", "(") is None

    def test_generic_entries_listed(self):
        gtm = _minimal(
            {
                ("s", ALPHA, "_"): ("h", ALPHA, "_", "-", "-"),
                ("s", "(", "("): ("h", "(", "(", "-", "-"),
            }
        )
        assert len(gtm.generic_entries()) == 1


class TestHelpers:
    def test_is_working(self):
        assert is_working("(")
        assert not is_working(Atom("("))

    def test_step_from_tuple(self):
        gtm = _minimal({("s", "(", "("): ("h", "(", "(", "-", "-")})
        assert isinstance(gtm.delta[("s", "(", "(")], Step)

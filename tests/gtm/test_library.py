"""Unit tests for the stock GTM library."""

import pytest

from repro.gtm.library import (
    TRUE_ATOM,
    all_machines,
    duplicate_gtm,
    identity_gtm,
    is_empty_gtm,
    parity_gtm,
    reverse_gtm,
    select_eq_gtm,
)
from repro.gtm.run import check_order_independence, gtm_query
from repro.model.schema import Database
from repro.model.values import Atom, SetVal, Tup


def _run(triple, data):
    gtm, schema, output_type = triple
    database = Database(schema, data)
    return gtm_query(gtm, database, output_type)


class TestIdentity:
    def test_binary(self):
        out = _run(identity_gtm(2), {"R": {(1, 2), (3, 4)}})
        assert out == SetVal([Tup([Atom(1), Atom(2)]), Tup([Atom(3), Atom(4)])])

    def test_unary(self):
        out = _run(identity_gtm(1), {"R": {1, 2}})
        assert out == SetVal([Atom(1), Atom(2)])

    def test_empty(self):
        assert _run(identity_gtm(2), {"R": set()}) == SetVal([])


class TestIsEmpty:
    def test_empty(self):
        assert _run(is_empty_gtm(), {"R": set()}) == SetVal([TRUE_ATOM])

    def test_nonempty(self):
        assert _run(is_empty_gtm(), {"R": {1, 2, 3}}) == SetVal([])

    def test_singleton(self):
        assert _run(is_empty_gtm(), {"R": {1}}) == SetVal([])


class TestParity:
    @pytest.mark.parametrize("size", range(7))
    def test_sizes(self, size):
        out = _run(parity_gtm(), {"R": set(range(size))})
        expected = SetVal([Atom("even")]) if size % 2 == 0 else SetVal([])
        assert out == expected

    def test_constant_atom_in_input(self):
        # The constant 'even' may legitimately occur in the input.
        out = _run(parity_gtm(), {"R": {"even", "x"}})
        assert out == SetVal([Atom("even")])


class TestReverse:
    def test_swaps(self):
        out = _run(reverse_gtm(), {"R": {(1, 2)}})
        assert out == SetVal([Tup([Atom(2), Atom(1)])])

    def test_self_loops_fixed(self):
        out = _run(reverse_gtm(), {"R": {(5, 5)}})
        assert out == SetVal([Tup([Atom(5), Atom(5)])])

    def test_involution(self):
        gtm, schema, output_type = reverse_gtm()
        database = Database(schema, {"R": {(1, 2), (3, 4), (5, 5)}})
        once = gtm_query(gtm, database, output_type)
        twice = gtm_query(
            gtm, Database(schema, {"R": once}), output_type
        )
        assert twice == database["R"]

    def test_empty(self):
        assert _run(reverse_gtm(), {"R": set()}) == SetVal([])


class TestSelectEq:
    def test_filters(self):
        out = _run(select_eq_gtm(), {"R": {(1, 1), (1, 2), (3, 3)}})
        assert out == SetVal([Tup([Atom(1), Atom(1)]), Tup([Atom(3), Atom(3)])])

    def test_nothing_matches(self):
        assert _run(select_eq_gtm(), {"R": {(1, 2), (3, 4)}}) == SetVal([])

    def test_everything_matches(self):
        out = _run(select_eq_gtm(), {"R": {(7, 7)}})
        assert len(out) == 1


class TestDuplicate:
    @pytest.mark.parametrize("size", range(5))
    def test_sizes(self, size):
        out = _run(duplicate_gtm(), {"R": set(range(size))})
        assert out == SetVal([Tup([Atom(i), Atom(i)]) for i in range(size)])


class TestOrderIndependence:
    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_every_machine(self, name):
        gtm, schema, output_type = all_machines()[name]
        if name in ("identity", "reverse", "select_eq"):
            data = {"R": {(1, 2), (2, 2), (3, 1)}}
        else:
            data = {"R": {1, 2, 3}}
        database = Database(schema, data)
        assert check_order_independence(gtm, database, output_type, max_orders=6)


class TestGenericity:
    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_every_machine_is_c_generic(self, name):
        from repro.model.genericity import check_generic

        gtm, schema, output_type = all_machines()[name]
        if name in ("identity", "reverse", "select_eq"):
            data = {"R": {(1, 2), (2, 2)}}
        else:
            data = {"R": {1, 2}}
        database = Database(schema, data)
        assert check_generic(
            lambda d: gtm_query(gtm, d, output_type),
            [database],
            constants=list(gtm.constants),
            max_perms=8,
        )

"""Theorem 6.3 end-to-end: untyped sets = invention, on bounded universes.

Direction (a), ci ⊑ CALC: the invented-value supply is replaced by
``cons_Obj({a})`` — checked as: the supply from one atom is unbounded
and disjoint objects.  Direction CALC ⊑ ci: an ``Obj``-typed
existential explored at invention stage ``k`` sees exactly the objects
with at most ``k`` constructor nodes, each representable as a flat
``{[U,U,U,U]}`` instance over ``k`` invented ids — checked as: the
bounded CALC evaluation equals the union of the stage-wise evaluations
over flatten-representable witnesses.
"""


from repro.budget import Budget
from repro.calculus.ast import And, Exists, In, Pred, Query, VarT
from repro.calculus.eval import Evaluator, evaluate_query
from repro.core.flattening import (
    flatten_value,
    invention_supply,
    node_count,
    objects_at_stage,
    unflatten_value,
)
from repro.model.schema import Database, Schema
from repro.model.types import OBJ, SetType, U, parse_type
from repro.model.values import Atom, SetVal


def _unary(*labels):
    return Database(Schema({"R": parse_type("U")}), {"R": set(labels)})


def _obj_query():
    """{x/U | ∃s/{Obj}: x ∈ s ∧ R(x)} — the minimal CALC∃ witness."""
    return Query(
        VarT("x"),
        U,
        Exists("s", SetType(OBJ), And(In(VarT("x"), VarT("s")), Pred("R", VarT("x")))),
        free_types={"x": U},
        name="obj-exists",
    )


class TestDirectionA:
    """ci ⊑ CALC: cons_Obj({a}) plays the countable invented supply."""

    def test_supply_is_unbounded_and_atom_cheap(self):
        for count in (10, 50, 120):
            supply = invention_supply(Atom("a"), count)
            assert len(set(supply)) == count
        from repro.model.values import adom

        for value in invention_supply(Atom("a"), 60):
            assert adom(value) <= frozenset({Atom("a")})

    def test_supply_members_flatten_like_invented_ids(self):
        # Each supply member can itself be flattened over invented ids —
        # the two "new value" mechanisms are interchangeable encodings.
        for value in invention_supply(Atom("a"), 15):
            ids = [Atom(f"ι{i}") for i in range(node_count(value))]
            root, rows = flatten_value(value, ids)
            assert unflatten_value(root, rows) == value


class TestDirectionB:
    """CALC ⊑ tsCALC^ci: stage-k exploration covers node-count-k objects."""

    def test_bounded_calc_equals_stagewise_union(self):
        database = _unary(1, 2)
        query = _obj_query()
        bound = 25
        full = evaluate_query(
            query, database, budget=Budget(steps=None, objects=None), obj_bound=bound
        )

        # Stage-wise: restrict the Obj-typed quantifier to objects
        # representable with k invented ids, for growing k; the union
        # must converge to the full bounded evaluation.
        evaluator = Evaluator(
            query, database, budget=Budget(steps=None, objects=None),
            obj_bound=bound,
        )
        atoms = sorted(evaluator.atoms, key=lambda a: a.canon_key())
        union: set = set()
        for stage in range(1, 12):
            witnesses = objects_at_stage(atoms, stage, limit=bound)
            for x in evaluator.domain(U):
                for s in witnesses:
                    if isinstance(s, SetVal) and x in s and x in database["R"]:
                        union.add(x)
        assert SetVal(union) == full

    def test_every_witness_is_flat_representable(self):
        atoms = [Atom(1), Atom(2)]
        for stage in (2, 4):
            for value in objects_at_stage(atoms, stage, limit=30):
                assert node_count(value) <= stage
                ids = [Atom(f"ι{i}") for i in range(stage)]
                root, rows = flatten_value(value, ids)
                assert unflatten_value(root, rows) == value

    def test_stagewise_is_monotone(self):
        atoms = [Atom(1)]
        previous: set = set()
        for stage in range(1, 8):
            current = set(objects_at_stage(atoms, stage, limit=40))
            assert previous <= current
            previous = current

"""Smoke tests: every example script runs to completion."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip()  # every example narrates what it does

"""E14 as a test: every evaluator in the library is C-generic.

Section 2: "All queries in the languages discussed here are generic and
domain preserving."  We verify this empirically for one representative
query per language, using the permutation-commutation checker.
"""


from repro.budget import Budget
from repro.model.genericity import check_domain_preserving, check_generic
from repro.workloads import chain_graph, random_binary_pairs, unary_instance


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None, facts=None)


BINARY_BANK = [random_binary_pairs(3, 3, seed) for seed in (1, 2)] + [chain_graph(2)]
UNARY_BANK = [unary_instance(n) for n in (2, 3)]


class TestAlgebraGenericity:
    def test_transitive_closure(self):
        from repro.algebra.eval import run_program
        from repro.algebra.library import transitive_closure

        program = transitive_closure()
        assert check_generic(
            lambda d: run_program(program, d), BINARY_BANK, max_perms=6
        )
        assert check_domain_preserving(
            lambda d: run_program(program, d), BINARY_BANK
        )

    def test_powerset_via_while(self):
        from repro.algebra.eval import run_program
        from repro.algebra.library import powerset_via_while

        program = powerset_via_while()
        assert check_generic(
            lambda d: run_program(program, d, _unlimited()), UNARY_BANK, max_perms=6
        )

    def test_compiled_gtm_program(self):
        from repro.core.alg_simulation import compile_gtm_to_alg, run_compiled
        from repro.gtm.library import parity_gtm

        gtm, schema, output_type = parity_gtm()
        program = compile_gtm_to_alg(gtm, schema, output_type)
        assert check_generic(
            lambda d: run_compiled(program, gtm, d, _unlimited()),
            UNARY_BANK,
            constants=list(gtm.constants),
            max_perms=6,
        )


class TestCalculusGenericity:
    def test_parity(self):
        from repro.calculus.eval import evaluate_query
        from repro.calculus.library import parity_query

        query = parity_query()
        assert check_generic(
            lambda d: evaluate_query(query, d, budget=_unlimited()),
            UNARY_BANK,
            constants=sorted(query.constants(), key=lambda a: a.canon_key()),
            max_perms=6,
        )

    def test_terminal_invention(self):
        from repro.calculus.invention import terminal_invention
        from repro.core.calc_simulation import compile_gtm_to_calc
        from repro.gtm.library import duplicate_gtm

        gtm, schema, output_type = duplicate_gtm()
        staged = compile_gtm_to_calc(gtm, output_type)
        assert check_generic(
            lambda d: terminal_invention(staged, d, Budget(stages=64)),
            UNARY_BANK,
            max_perms=6,
        )


class TestDeductiveGenericity:
    def test_datalog_tc(self):
        from repro.deductive.datalog import (
            run_datalog_stratified,
            transitive_closure_datalog,
        )

        program = transitive_closure_datalog()
        assert check_generic(
            lambda d: run_datalog_stratified(program, d), BINARY_BANK, max_perms=6
        )

    def test_compiled_col_program(self):
        from repro.core.col_simulation import compile_gtm_to_col, run_compiled_col
        from repro.gtm.library import is_empty_gtm

        gtm, schema, output_type = is_empty_gtm()
        program = compile_gtm_to_col(gtm, output_type)
        assert check_generic(
            lambda d: run_compiled_col(program, gtm, d, "stratified", _unlimited()),
            UNARY_BANK,
            constants=list(gtm.constants),
            max_perms=4,
        )


class TestMachineGenericity:
    def test_gtm_queries(self):
        from repro.gtm.library import reverse_gtm
        from repro.gtm.run import gtm_query

        gtm, schema, output_type = reverse_gtm()
        assert check_generic(
            lambda d: gtm_query(gtm, d, output_type), BINARY_BANK, max_perms=6
        )
        assert check_domain_preserving(
            lambda d: gtm_query(gtm, d, output_type), BINARY_BANK
        )

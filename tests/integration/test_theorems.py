"""Integration tests: each of the paper's headline results end-to-end.

One test (class) per theorem / proposition, exercising the full
pipeline the corresponding experiment (EXPERIMENTS.md) automates.
"""

import pytest

from repro.budget import Budget
from repro.core.equivalence import check_agreement, implementations_for
from repro.errors import StratificationError, is_undefined
from repro.gtm.library import all_machines
from repro.model.schema import Database
from repro.model.values import Atom, NamedTup, SetVal


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None, facts=None, stages=None)


def _databases_for(name, schema):
    if name in ("identity", "reverse", "select_eq"):
        data = [set(), {(1, 2)}, {(1, 1), (2, 3)}]
    else:
        data = [set(), {1}, {1, 2}]
    return [Database(schema, {"R": rows}) for rows in data]


class TestTheorem21And41a:
    """tsALG ≡ tsCALC ≡ DATALOG on elementary queries; ALG ≡ tsALG."""

    def test_join_all_languages(self):
        from repro.algebra.eval import run_program
        from repro.algebra.library import natural_join
        from repro.calculus.eval import evaluate_query
        from repro.calculus.library import join_query
        from repro.deductive.ast import PredLit, Rule, TupD
        from repro.deductive.datalog import DatalogProgram, run_datalog_stratified
        from repro.model.schema import Schema
        from repro.model.types import parse_type

        schema = Schema({"R": parse_type("[U, U]"), "S": parse_type("[U, U]")})
        database = Database(
            schema, {"R": {(1, 2), (5, 6)}, "S": {(2, 3), (2, 4), (9, 9)}}
        )
        algebra = run_program(natural_join(), database)
        calculus = evaluate_query(join_query(), database)
        datalog = run_datalog_stratified(
            DatalogProgram(
                [
                    Rule(
                        PredLit("ANS", TupD(["x", "y", "z"])),
                        [PredLit("R", TupD(["x", "y"])), PredLit("S", TupD(["y", "z"]))],
                    )
                ]
            ),
            database,
        )
        assert algebra == calculus == datalog

    def test_tc_all_languages(self):
        from repro.algebra.eval import run_program
        from repro.algebra.library import transitive_closure, transitive_closure_powerset
        from repro.calculus.eval import evaluate_query
        from repro.calculus.library import tc_query
        from repro.deductive.datalog import (
            run_datalog_stratified,
            transitive_closure_datalog,
        )
        from repro.workloads import chain_graph

        database = chain_graph(2)
        results = {
            "alg-while": run_program(transitive_closure(), database),
            "alg-powerset": run_program(
                transitive_closure_powerset(), database, _unlimited()
            ),
            "calc": evaluate_query(tc_query(), database, budget=_unlimited()),
            "datalog": run_datalog_stratified(transitive_closure_datalog(), database),
        }
        values = list(results.values())
        assert all(v == values[0] for v in values), results


class TestTheorem41b:
    """ALG+while−powerset is C-equivalent."""

    @pytest.mark.parametrize("name", ["parity", "reverse", "duplicate"])
    def test_machines_via_algebra(self, name):
        gtm, schema, output_type = all_machines()[name]
        impls = implementations_for(
            gtm, schema, output_type, routes=["gtm", "alg_while"]
        )
        check_agreement(impls, _databases_for(name, schema))

    def test_unnesting_preserves_compiled_programs(self):
        # The compiled program is already unnested; the Thm 4.1(b)(iii)
        # rewrite must be a semantic no-op on it.
        from repro.algebra.rewrites import unnest_whiles
        from repro.core.alg_simulation import compile_gtm_to_alg, run_compiled

        gtm, schema, output_type = all_machines()["is_empty"]
        program = compile_gtm_to_alg(gtm, schema, output_type)
        flat = unnest_whiles(program)
        database = Database(schema, {"R": {1}})
        assert run_compiled(program, gtm, database, _unlimited()) == run_compiled(
            flat, gtm, database, _unlimited()
        )


class TestTheorem51:
    """COL^str ≡ COL^inf ≡ C."""

    @pytest.mark.parametrize("name", ["parity", "select_eq"])
    def test_machines_via_col(self, name):
        gtm, schema, output_type = all_machines()[name]
        impls = implementations_for(
            gtm, schema, output_type,
            routes=["gtm", "col_stratified", "col_inflationary"],
        )
        check_agreement(impls, _databases_for(name, schema))

    def test_flat_contrast_win_move(self):
        # On flat DATALOG¬ the semantics differ (win-move); with untyped
        # sets the compiled programs agree — both facts in one test.
        from repro.deductive.datalog import (
            run_datalog_inflationary,
            run_datalog_stratified,
            unstratifiable_program,
        )
        from repro.model.schema import Schema
        from repro.model.types import parse_type

        program = unstratifiable_program()
        database = Database(
            Schema({"move": parse_type("[U, U]")}), {"move": {(1, 2)}}
        )
        with pytest.raises(StratificationError):
            run_datalog_stratified(program, database)
        assert run_datalog_inflationary(program, database) is not None


class TestProposition31:
    """GTM ⇄ conventional TM."""

    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_roundtrip(self, name):
        gtm, schema, output_type = all_machines()[name]
        impls = implementations_for(gtm, schema, output_type, routes=["gtm", "tm"])
        check_agreement(impls, _databases_for(name, schema))


class TestProposition53And55:
    """BK cannot join; BK cannot build lists from chains."""

    def test_join_pollution(self):
        from repro.deductive.bk import join_attempt_program, run_bk

        out = run_bk(
            join_attempt_program(),
            {"R1": [{"A": 1, "B": 2}], "R2": [{"B": 2, "C": 3}, {"B": 4, "C": 5}]},
            Budget(objects=None, steps=None),
        )
        true_join = {NamedTup({"A": Atom(1), "C": Atom(3)})}
        assert set(out.items) > true_join  # strictly more: the pollution

    def test_chain_divergence(self):
        from repro.deductive.bk import chain_to_list_program, run_bk
        from repro.workloads import chain_for_bk

        out = run_bk(
            chain_to_list_program(),
            chain_for_bk(1),
            Budget(iterations=5, steps=60_000, objects=150_000, facts=None),
        )
        assert is_undefined(out)


class TestTheorem64:
    """tsCALC^ti is C-equivalent."""

    @pytest.mark.parametrize("name", ["parity", "is_empty", "duplicate"])
    def test_machines_via_terminal_invention(self, name):
        gtm, schema, output_type = all_machines()[name]
        impls = implementations_for(
            gtm, schema, output_type, routes=["gtm", "calc_terminal"]
        )
        check_agreement(impls, _databases_for(name, schema))


class TestGrandAgreement:
    """All six routes at once on the parity query (the headline demo)."""

    def test_six_routes(self):
        gtm, schema, output_type = all_machines()["parity"]
        impls = implementations_for(gtm, schema, output_type)
        outcomes = check_agreement(impls, _databases_for("parity", schema))
        assert outcomes[0] == SetVal([Atom("even")])  # |R| = 0
        assert outcomes[1] == SetVal([])  # |R| = 1
        assert outcomes[2] == SetVal([Atom("even")])  # |R| = 2

"""Failure injection: every evaluator must degrade to ``?``, never lie.

The paper's semantics funnels all abnormal outcomes (divergence,
malformed machine output, infinite models) into the single undefined
value.  These tests inject each failure mode and check the funnel.
"""

import pytest

from repro.budget import Budget
from repro.errors import is_undefined
from repro.gtm.machine import GTM
from repro.model.encoding import BLANK
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import SetVal


def _spinner():
    """A GTM that never halts (spins on '(')."""
    return GTM(
        states={"s", "h"},
        working=[],
        constants=[],
        delta={("s", "(", BLANK): ("s", "(", BLANK, "-", "-")},
        start="s",
        halt="h",
    )


def _unary_db(*labels):
    return Database(Schema({"R": parse_type("U")}), {"R": set(labels)})


class TestDivergenceFunnels:
    def test_gtm_runner(self):
        from repro.gtm.run import gtm_query

        out = gtm_query(
            _spinner(), _unary_db(1), parse_type("U"), budget=Budget(steps=500)
        )
        assert is_undefined(out)

    def test_conventional_simulation(self):
        from repro.gtm.compile import simulate_gtm_conventionally

        out = simulate_gtm_conventionally(
            _spinner(), _unary_db(1), parse_type("U"), budget=Budget(steps=500)
        )
        assert is_undefined(out)

    def test_compiled_algebra(self):
        from repro.core.alg_simulation import compile_gtm_to_alg, run_compiled

        schema = Schema({"R": parse_type("U")})
        program = compile_gtm_to_alg(_spinner(), schema, parse_type("U"))
        out = run_compiled(
            program, _spinner(), _unary_db(1), Budget(iterations=60, objects=None)
        )
        assert is_undefined(out)

    def test_compiled_col_both_semantics(self):
        from repro.core.col_simulation import compile_gtm_to_col, run_compiled_col

        program = compile_gtm_to_col(_spinner(), parse_type("U"))
        for semantics in ("stratified", "inflationary"):
            out = run_compiled_col(
                program,
                _spinner(),
                _unary_db(1),
                semantics,
                Budget(facts=1500, steps=None),
            )
            assert is_undefined(out), semantics

    def test_terminal_invention(self):
        from repro.calculus.invention import terminal_invention
        from repro.core.calc_simulation import compile_gtm_to_calc

        staged = compile_gtm_to_calc(_spinner(), parse_type("U"))
        out = terminal_invention(staged, _unary_db(1), Budget(stages=5, steps=None))
        assert is_undefined(out)


class TestMalformedOutputFunnels:
    def test_garbage_tape_is_undefined_everywhere(self):
        # Halt immediately after scribbling a stray ']' — not a listing.
        scribbler = GTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", "(", BLANK): ("h", "]", BLANK, "-", "-")},
            start="s",
            halt="h",
        )
        from repro.core.alg_simulation import compile_gtm_to_alg, run_compiled
        from repro.gtm.run import gtm_query

        schema = Schema({"R": parse_type("U")})
        database = _unary_db(1)
        assert is_undefined(gtm_query(scribbler, database, parse_type("U")))
        # The algebra decoder for set-of-atoms output keeps only
        # non-working cells, so for type U it still decodes (the paper's
        # "contents not an ordered listing" clause is about *structure*;
        # a lone ']' leaves no data cells).  For tuple outputs the chain
        # join finds no well-formed row either way:
        program = compile_gtm_to_alg(scribbler, schema, parse_type("[U, U]"))
        out = run_compiled(
            program, scribbler, database, Budget(steps=None, objects=None)
        )
        assert out == SetVal([]) or is_undefined(out)


class TestUndefinedIsViral:
    def test_algebra_assignment(self, binary_db):
        from repro.algebra.ast import Assign, Diff, Program, Undefine, Var
        from repro.algebra.eval import run_program

        program = Program(
            [
                Assign("e", Diff(Var("R"), Var("R"))),
                Assign("u", Undefine(Var("e"))),
                Assign("ANS", Var("R")),  # never reached
            ],
            input_names=["R"],
        )
        assert is_undefined(run_program(program, binary_db))

    def test_budget_exhaustion_is_quiet_not_raised(self, binary_db):
        from repro.algebra.eval import run_program
        from repro.algebra.library import transitive_closure

        # Tiny budget: the evaluator reports ?, it does not crash.
        out = run_program(transitive_closure(), binary_db, Budget(steps=3))
        assert is_undefined(out)


class TestCollisionGuards:
    def test_invented_namespace_guard(self):
        from repro.calculus.invention import upper_stage
        from repro.calculus.library import membership_query
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            upper_stage(membership_query(), _unary_db("ι0"), 1)

    def test_working_symbol_guard_in_col(self):
        from repro.core.col_simulation import encode_database_for_col
        from repro.errors import MachineError
        from repro.gtm.library import parity_gtm

        gtm, schema, _ = parity_gtm()
        with pytest.raises(MachineError):
            encode_database_for_col(gtm, Database(schema, {"R": {"["}}))

"""Session: the user-facing query API over planner + memo cache."""

from repro.budget import Budget
from repro.errors import UNDEFINED
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.session import Session, connect


SCHEMA = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})
DB = Database.from_plain(
    SCHEMA, R=[("a", "b"), ("b", "c"), ("c", "d")], S=["a", "b"]
)


def _session(**kwargs):
    return Session(DB, **kwargs)


class TestConnect:
    def test_connect_from_plain_instances(self):
        session = connect(schema=SCHEMA, R=[("a", "b")], S=["a"])
        result = session.query("{ x | S(x) }")
        assert result == session.database["S"]

    def test_connect_with_existing_database(self):
        session = connect(DB)
        assert session.database is DB

    def test_connect_passes_cache_capacities(self):
        session = connect(DB, memo_entries=7, plan_entries=3, obj_bound=50)
        assert session.memo.max_entries == 7
        assert session.plans.max_entries == 3
        assert session.obj_bound == 50


class TestQuery:
    def test_query_returns_value(self):
        session = _session()
        result = session.query("{ x | S(x) }")
        assert result == DB["S"]

    def test_backend_override_agrees(self):
        session = _session()
        text = "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"
        plan = session.plan(text)
        results = {
            backend: session.query(text, backend=backend)
            for backend in plan.backends()
        }
        assert len(set(results.values())) == 1

    def test_last_report_tracks_backend(self):
        session = _session()
        session.query("{ x | S(x) }")
        report = session.last_report
        assert report is not None
        assert report.backend == session.plan("{ x | S(x) }").chosen.backend

    def test_rule_block_transitive_closure(self):
        session = _session()
        result = session.query(
            "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T"
        )
        pairs = {tuple(str(i) for i in t.items) for t in result.items}
        assert ("a", "d") in pairs  # a->b->c->d

    def test_query_against_other_database(self):
        session = _session()
        other = Database.from_plain(SCHEMA, R=[], S=["z"])
        result = session.query("{ x | S(x) }", database=other)
        assert result == other["S"]


class TestBudgets:
    def test_child_budget_isolation(self):
        session = _session(budget=Budget())
        session.query("{ x | S(x) }")
        # The session budget itself is untouched by per-query children.
        assert session.budget.spent_all() == {}

    def test_tight_budget_yields_undefined(self):
        session = _session()
        result = session.query(
            "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }",
            budget=Budget(steps=1),
        )
        assert result is UNDEFINED


class TestPlanCacheLRU:
    def test_plan_is_reused_for_same_text(self):
        session = _session()
        first = session.plan("{ x | S(x) }")
        second = session.plan("{ x | S(x) }")
        assert first is second

    def test_plan_rebuilt_for_other_database(self):
        session = _session()
        other = Database.from_plain(SCHEMA, R=[("a", "b")], S=["a"])
        first = session.plan("{ x | S(x) }")
        second = session.plan("{ x | S(x) }", database=other)
        assert first is not second

    def test_plan_cache_counters(self):
        session = _session()
        session.plan("{ x | S(x) }")
        session.plan("{ x | S(x) }")
        assert session.plans.stats.misses == 1
        assert session.plans.stats.hits == 1

    def test_custom_plan_capacity_evicts(self):
        session = _session(plan_entries=1)
        session.plan("{ x | S(x) }")
        session.plan("{ [x, y] | R([x, y]) }")
        session.plan("{ x | S(x) }")  # evicted: rebuilt, not reused
        assert session.plans.stats.evictions >= 1
        assert session.plans.stats.misses >= 2


class TestExplain:
    def test_explain_plan_sections(self):
        session = _session()
        text = session.explain("{ [x, z] | some y / U : R([x, y]) and R([y, z]) }")
        assert text.startswith("EXPLAIN")
        assert "candidates:" in text
        assert "rewrites:" in text
        assert "->" in text

    def test_explain_run_appends_actuals(self):
        session = _session()
        text = session.explain("{ x | S(x) }", run=True)
        assert "actuals:" in text
        assert "result:" in text

    def test_explain_run_shows_physical_tree(self):
        session = _session()
        text = session.explain("{ x | S(x) }", run=True)
        assert "physical:" in text
        assert "Scan(" in text

    def test_explain_run_shows_plan_cache_counters(self):
        session = _session()
        session.explain("{ x | S(x) }", run=True)
        text = session.explain("{ x | S(x) }", run=True)
        assert "plan cache: hits=" in text

    def test_explain_deterministic(self):
        session = _session()
        text = "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"
        assert session.explain(text) == session.explain(text)

"""Plan/result caching semantics (satellite: genericity-aware memo).

The session memoizes query results keyed by (plan fingerprint, chosen
backend, canonicalised database).  By C-genericity a permuted-isomorphic
database must hit the cached entry and get the correctly renamed answer;
invention queries are not generic and must bypass; a genuinely mutated
database must miss.
"""

from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.session import Session


SCHEMA = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})
DB = Database.from_plain(
    SCHEMA, R=[("a", "b"), ("b", "c"), ("c", "d")], S=["a", "b"]
)
# DB with every atom renamed through the permutation a->p, b->q, c->r, d->s.
RENAME = {"a": "p", "b": "q", "c": "r", "d": "s"}
DB_ISO = Database.from_plain(
    SCHEMA,
    R=[(RENAME[x], RENAME[y]) for x, y in [("a", "b"), ("b", "c"), ("c", "d")]],
    S=[RENAME[x] for x in ("a", "b")],
)
# DB with one extra fact — not isomorphic to DB.
DB_MUTATED = Database.from_plain(
    SCHEMA, R=[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], S=["a", "b"]
)

JOIN = "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"


class TestIsomorphicHit:
    def test_permuted_database_hits_and_renames(self):
        session = Session(DB)
        baseline = session.query(JOIN)
        assert session.memo.stats.misses == 1
        assert session.memo.stats.hits == 0

        renamed = session.query(JOIN, database=DB_ISO)
        assert session.memo.stats.hits == 1
        assert session.memo.stats.misses == 1
        assert session.last_report.cached

        # The cached answer is renamed through DB_ISO's own atoms: it
        # must equal a fresh evaluation against DB_ISO.
        direct = Session(DB_ISO).query(JOIN)
        assert renamed == direct
        assert renamed != baseline  # different atoms, same shape

    def test_same_database_hits(self):
        session = Session(DB)
        first = session.query(JOIN)
        second = session.query(JOIN)
        assert first == second
        assert session.memo.stats.hits == 1


class TestInventionBypass:
    def test_obj_query_bypasses_cache(self):
        session = Session(DB)
        assert not session.plan("{ x / Obj | S(x) }").generic
        session.query("{ x / Obj | S(x) }")
        session.query("{ x / Obj | S(x) }")
        assert session.memo.stats.bypasses == 2
        assert session.memo.stats.hits == 0
        assert session.memo.stats.misses == 0

    def test_typed_query_does_not_bypass(self):
        session = Session(DB)
        session.query("{ x | S(x) }")
        assert session.memo.stats.bypasses == 0


class TestMutationMiss:
    def test_mutated_database_misses(self):
        session = Session(DB)
        session.query(JOIN)
        result = session.query(JOIN, database=DB_MUTATED)
        assert session.memo.stats.hits == 0
        assert session.memo.stats.misses == 2
        # And the answer reflects the mutated instance (d->a closes a cycle).
        direct = Session(DB_MUTATED).query(JOIN)
        assert result == direct

    def test_backend_is_part_of_the_key(self):
        session = Session(DB)
        backends = session.plan(JOIN).backends()
        session.query(JOIN, backend=backends[0])
        session.query(JOIN, backend=backends[-1])
        assert session.memo.stats.misses == 2
        assert session.memo.stats.hits == 0

"""Session.apply_delta: targeted invalidation, plan migration, views.

The session is the layer where a committed delta meets the caches: the
genericity-aware memo must drop exactly the entries whose footprint
intersects the delta (restricted keying makes the others *hit* across
the commit), the plan LRU migrates footprint-disjoint plans, and
materialized views refresh incrementally.
"""

import pytest

from repro.errors import EvaluationError
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.session import Session
from repro.store.codec import rows_from_json
from repro.store.tx import apply_ops

TC = "rules { T(x, y) :- E(x, y). T(x, z) :- E(x, y), T(y, z). } answer T"
OVER_S = "{ x | S(x) }"


def make_db(edges, s=("q",)):
    schema = Schema({"E": parse_type("[U, U]"), "S": parse_type("U")})
    return Database(schema, {"E": set(edges), "S": set(s)})


def commit(database, asserts=None, retracts=None):
    schema = database.schema
    decoded = [
        {
            name: rows_from_json(rows, schema.rtype(name), name)
            for name, rows in (batch or {}).items()
        }
        for batch in (asserts, retracts)
    ]
    return apply_ops(database, *decoded)


class TestRestrictedMemoKeying:
    def test_unrelated_delta_preserves_the_memo_entry(self):
        session = Session(make_db([("a", "b"), ("b", "c")]))
        first, report = session.run(TC, backend="col-stratified")
        assert not report.cached
        new_db, delta = commit(session.database, {"S": ["zz"]})
        stats = session.apply_delta(new_db, delta)
        assert stats["invalidations"] == 0
        assert stats["plans_migrated"] >= 1
        second, report = session.run(TC, backend="col-stratified")
        assert report.cached  # memo HIT across the commit
        assert second == first

    def test_intersecting_delta_invalidates(self):
        session = Session(make_db([("a", "b")]))
        session.run(TC, backend="col-stratified")
        new_db, delta = commit(session.database, {"E": [["b", "c"]]})
        stats = session.apply_delta(new_db, delta)
        assert stats["invalidations"] == 1
        assert stats["plans_dropped"] >= 1
        result, report = session.run(TC, backend="col-stratified")
        assert not report.cached
        assert "Atom('c')" in repr(result)  # fresh answer sees the edge

    def test_footprint_includes_idb_named_predicates(self):
        """A schema predicate sharing an IDB head's name seeds the
        fixpoint, so a delta on it must invalidate the entry."""
        schema = Schema({"E": parse_type("[U, U]"), "T": parse_type("[U, U]")})
        database = Database(schema, {"E": {("a", "b")}, "T": set()})
        session = Session(database)
        first, _ = session.run(TC, backend="col-stratified")
        new_db, delta = commit(session.database, {"T": [["x", "y"]]})
        stats = session.apply_delta(new_db, delta)
        assert stats["invalidations"] == 1
        second, report = session.run(TC, backend="col-stratified")
        assert not report.cached
        assert second != first  # the base T fact feeds the answer

    def test_empty_delta_only_rebinds(self):
        session = Session(make_db([("a", "b")]))
        session.run(TC)
        new_db, delta = commit(session.database, {"E": [["a", "b"]]})
        assert delta.empty() and new_db == session.database
        stats = session.apply_delta(new_db, delta)
        assert all(count == 0 for count in stats.values())


class TestPlanMigration:
    def test_migrated_plan_is_the_same_object(self):
        session = Session(make_db([("a", "b")]))
        plan = session.plan(TC)
        new_db, delta = commit(session.database, {"S": ["zz"]})
        session.apply_delta(new_db, delta)
        assert session.plan(TC) is plan  # survived, re-keyed

    def test_intersecting_plan_is_replanned(self):
        session = Session(make_db([("a", "b")]))
        plan = session.plan(TC)
        new_db, delta = commit(session.database, {"E": [["b", "c"]]})
        session.apply_delta(new_db, delta)
        assert session.plan(TC) is not plan


class TestMaterializedViews:
    def test_view_answers_for_fixpoint_drivers(self):
        session = Session(make_db([("a", "b"), ("b", "c")]))
        view = session.materialize(TC)
        for backend in ("col-stratified", "col-inflationary", "col-naive"):
            result, report = session.run(TC, backend=backend)
            assert report.cached  # served by the view, nothing ran
            assert result == view.answer()

    def test_view_refreshes_across_apply_delta(self):
        session = Session(make_db([("a", "b")]))
        session.materialize(TC)
        new_db, delta = commit(session.database, {"E": [["b", "c"]]})
        stats = session.apply_delta(new_db, delta)
        assert stats["views_refreshed"] == 1
        assert stats["incremental_rounds"] >= 1
        result, report = session.run(TC, backend="col-naive")
        assert report.cached
        fresh, _ = Session(new_db).run(TC, backend="col-stratified")
        assert result == fresh

    def test_view_dropped_on_retraction_then_recompute_correct(self):
        session = Session(make_db([("a", "b"), ("b", "c")]))
        session.materialize(TC)
        new_db, delta = commit(session.database, retracts={"E": [["a", "b"]]})
        stats = session.apply_delta(new_db, delta)
        assert stats["views_dropped"] == 1
        result, report = session.run(TC, backend="col-stratified")
        assert not report.cached
        assert "Atom('a')" not in repr(result)

    def test_materialize_is_idempotent(self):
        session = Session(make_db([("a", "b")]))
        assert session.materialize(TC) is session.materialize(TC)

    def test_non_rule_queries_refuse(self):
        session = Session(make_db([("a", "b")]))
        with pytest.raises(EvaluationError, match="rule-block"):
            session.materialize(OVER_S)

    def test_unsafe_programs_refuse(self):
        session = Session(make_db([("a", "b")]))
        unsafe = (
            "rules { P(x) :- S(x), not T(x). T(x) :- E(x, x). } answer P"
        )
        with pytest.raises(EvaluationError, match="delta-safe"):
            session.materialize(unsafe)

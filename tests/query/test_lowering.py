"""Cross-language lowerings: fidelity to the calculus semantics."""

import pytest

from repro.algebra.eval import run_program
from repro.algebra.lowering import comprehension_to_algebra, push_selections
from repro.calculus.eval import evaluate_query
from repro.calculus.lowering import comprehension_to_calculus
from repro.deductive.lowering import comprehension_to_col
from repro.deductive.stratify import run_stratified
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.ir import LoweringUnsupported, conjunctive_core
from repro.query.parser import parse


SCHEMA = Schema(
    {
        "R": parse_type("[U, U]"),
        "S": parse_type("U"),
        "N": parse_type("{U}"),
    }
)
DB = Database.from_plain(
    SCHEMA,
    R=[("a", "b"), ("b", "c"), ("c", "d"), ("a", "a")],
    S=["a", "c"],
    N=[{"a", "b"}, {"c"}],
)


def _comp(text):
    query = parse(text, schema=SCHEMA)
    return query.typecheck(SCHEMA)


def _calc(comp):
    return evaluate_query(comprehension_to_calculus(comp), DB)


class TestConjunctiveCore:
    def test_strips_exists_and_flattens_and(self):
        comp = _comp("{ [x, z] | some y / U : R([x, y]) and R([y, z]) }")
        exist_types, conjuncts = conjunctive_core(comp)
        assert set(exist_types) == {"y"}
        assert len(conjuncts) == 2

    def test_disjunction_unsupported(self):
        comp = _comp("{ x | S(x) or R([x, x]) }")
        with pytest.raises(LoweringUnsupported, match="disjunction"):
            conjunctive_core(comp)

    def test_shadowed_variable_unsupported(self):
        comp = _comp("{ x | S(x) and some x / U : S(x) }")
        with pytest.raises(LoweringUnsupported, match="shadowed"):
            conjunctive_core(comp)


class TestAlgebraLowering:
    @pytest.mark.parametrize(
        "text",
        [
            "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }",
            "{ [x, y] | R([x, y]) }",
            "{ x | S(x) }",
            "{ x | S(x) and x = 'a' }",
            "{ [x, y] | R([x, y]) and S(x) }",
            "{ [x, y] | R([x, y]) and x = y }",
            "{ [x, y] | R([x, 'a']) and R([x, y]) }",
            "{ x | some s / {U} : N(s) and S(x) and x in s }",
        ],
    )
    def test_matches_calculus(self, text):
        comp = _comp(text)
        program = comprehension_to_algebra(comp, SCHEMA)
        assert run_program(program, DB) == _calc(comp)

    def test_pushdown_preserves_results(self):
        comp = _comp("{ [x, z] | some y / U : R([x, y]) and R([y, z]) and S(x) }")
        program = comprehension_to_algebra(comp, SCHEMA)
        pushed, count = push_selections(program, SCHEMA)
        assert run_program(pushed, DB) == run_program(program, DB) == _calc(comp)

    def test_negation_unsupported(self):
        comp = _comp("{ x | S(x) and not R([x, x]) }")
        with pytest.raises(LoweringUnsupported, match="negated"):
            comprehension_to_algebra(comp, SCHEMA)

    def test_obj_annotation_unsupported(self):
        # An Obj-typed variable enumerates invented values in the
        # calculus; the fact-bound algebra scan would silently differ.
        comp = _comp("{ x / Obj | S(x) }")
        with pytest.raises(LoweringUnsupported, match="annotated"):
            comprehension_to_algebra(comp, SCHEMA)

    def test_unbound_head_unsupported(self):
        comp = _comp("{ x / U | some y / U : S(y) and x = x }")
        with pytest.raises(LoweringUnsupported):
            comprehension_to_algebra(comp, SCHEMA)


class TestColLowering:
    @pytest.mark.parametrize(
        "text",
        [
            "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }",
            "{ x | S(x) }",
            "{ x | S(x) and x = 'a' }",
            "{ x | S(x) and not R([x, x]) }",
            "{ [x, y] | R([x, y]) and x != y }",
        ],
    )
    def test_matches_calculus(self, text):
        comp = _comp(text)
        program = comprehension_to_col(comp, SCHEMA)
        assert run_stratified(program, DB) == _calc(comp)

    def test_answer_name_avoids_schema(self):
        schema = Schema({"ANS": parse_type("U")})
        comp = parse("{ x | ANS(x) }", schema=schema).typecheck(schema)
        program = comprehension_to_col(comp, schema)
        assert program.answer == "ANS_"

    def test_membership_unsupported(self):
        comp = _comp("{ x | some s / {U} : N(s) and S(x) and x in s }")
        with pytest.raises(LoweringUnsupported, match="membership"):
            comprehension_to_col(comp, SCHEMA)

    def test_constant_outside_declared_type_unsupported(self):
        comp = _comp("{ x | S(x) and x = [1, 2] }")
        with pytest.raises(LoweringUnsupported, match="outside its declared type"):
            comprehension_to_col(comp, SCHEMA)

"""Surface-language parsing: every form, annotations, and errors."""

import pytest

from repro.errors import SchemaError, TypeCheckError
from repro.model.schema import Schema
from repro.model.types import SetType, U, parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.query.ir import (
    BKQuery,
    Comprehension,
    GTMQuery,
    LiteralQuery,
    PipelineQuery,
    RuleQuery,
)
from repro.query.parser import ParseError, parse


SCHEMA = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})


class TestLiterals:
    def test_ground_set(self):
        query = parse("{ 1, [2, 3], {4} }")
        assert isinstance(query, LiteralQuery)
        assert query.value == SetVal([Atom(1), Tup([Atom(2), Atom(3)]), SetVal([Atom(4)])])

    def test_empty_set(self):
        assert parse("{}").value == SetVal([])

    def test_string_atoms(self):
        assert parse("{ 'a' }").value == SetVal([Atom("a")])

    def test_constants_reported(self):
        assert parse("{ 1, [2, 3] }").constants() == frozenset(
            {Atom(1), Atom(2), Atom(3)}
        )


class TestComprehensions:
    def test_basic_join(self):
        query = parse("{ [x, z] | some y / U : R([x, y]) and R([y, z]) }")
        assert isinstance(query, Comprehension)
        assert query.free_variables() == {"x", "z"}
        assert query.predicates() == ("R",)

    def test_literal_vs_comprehension_brace(self):
        assert isinstance(parse("{ {1}, {2} }"), LiteralQuery)
        assert isinstance(parse("{ x | S(x) }"), Comprehension)

    def test_annotations_collected(self):
        query = parse("{ x / U | S(x) or x = 1 }")
        assert query.annotations == {"x": U}

    def test_typecheck_infers_from_schema(self):
        query = parse("{ [x, y] | R([x, y]) }", schema=SCHEMA)
        assert query.var_types == {"x": U, "y": U}
        assert query.is_typed()

    def test_quantifier_default_rtype_is_obj(self):
        query = parse("{ x | some s : S(x) and x in s }", schema=SCHEMA)
        assert not query.is_typed()

    def test_membership_types_container(self):
        query = parse("{ s | some x / U : S(x) and x in s }", schema=SCHEMA)
        assert query.var_types["s"] == SetType(U)

    def test_untypable_variable_is_an_error(self):
        with pytest.raises(TypeCheckError, match="cannot infer"):
            parse("{ x | y = y and S(y) }", schema=SCHEMA)

    def test_unknown_predicate_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="NOPE"):
            parse("{ x | NOPE(x) }", schema=SCHEMA)

    def test_conflicting_annotations_rejected(self):
        with pytest.raises(ParseError, match="conflicting"):
            parse("{ x / U | S(x / Obj) }")


class TestPipelines:
    def test_steps_compose(self):
        query = parse("R |> select(1 = 2) |> project(1)")
        assert isinstance(query, PipelineQuery)
        assert query.predicates() == ("R",)

    def test_binary_steps_merge_uses(self):
        query = parse("R |> product(S) |> select(3 = 'a')")
        assert query.predicates() == ("R", "S")
        assert Atom("a") in query.constants()

    def test_tuple_membership_condition(self):
        query = parse("R |> select((1, 2) in 3)")
        assert isinstance(query, PipelineQuery)

    def test_bad_operator(self):
        with pytest.raises(ParseError, match="unknown pipeline operator"):
            parse("R |> frobnicate(1)")

    def test_atom_source_cannot_be_piped(self):
        with pytest.raises(ParseError, match="instances"):
            parse("1 |> project(1)")


class TestRuleBlocks:
    def test_answer_inference_single_head(self):
        query = parse("rules { T(x) :- S(x). }")
        assert isinstance(query, RuleQuery)
        assert query.program.answer == "T"

    def test_answer_explicit(self):
        query = parse("rules { T(x) :- S(x). P(x) :- T(x). } answer P")
        assert query.program.answer == "P"

    def test_ambiguous_answer_rejected(self):
        with pytest.raises(ParseError, match="ambiguous"):
            parse("rules { T(x) :- S(x). P(x) :- S(x). }")

    def test_negation_and_recursion_flags(self):
        query = parse(
            "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T"
        )
        assert query.is_recursive()
        assert not query.has_negation()
        negated = parse("rules { P(x) :- S(x), not T(x). T(x) :- R(x, x). } answer P")
        assert negated.has_negation()

    def test_range_restriction_enforced_at_parse(self):
        with pytest.raises(TypeCheckError, match="range-restricted"):
            parse("rules { T(x, y) :- S(x). }")

    def test_function_literals(self):
        query = parse(
            "rules { x in F(y) :- R(y, x). T(y, F(y)) :- S(y). } answer T"
        )
        assert isinstance(query, RuleQuery)


class TestBKBlocks:
    def test_basic_block(self):
        query = parse("bk { A(x) :- S(x). } answer A")
        assert isinstance(query, BKQuery)
        assert query.predicates() == ("S",)

    def test_named_tuple_patterns(self):
        query = parse("bk { A([F: x]) :- R([F: x, G: y]). } answer A")
        pattern = query.program.rules[0].head.pattern
        assert set(pattern) == {"F"}

    def test_set_patterns(self):
        query = parse("bk { A(x) :- S({x}). } answer A")
        assert isinstance(query, BKQuery)


class TestGTM:
    def test_library_lookup(self):
        query = parse("gtm parity")
        assert isinstance(query, GTMQuery)
        assert query.name == "parity"
        assert query.predicates() == ("R",)

    def test_unknown_machine(self):
        with pytest.raises(ParseError, match="unknown library machine"):
            parse("gtm does_not_exist")


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("{ 1 } { 2 }")

    def test_keywords_are_not_variables(self):
        with pytest.raises(ParseError):
            parse("{ in | S(in) }")

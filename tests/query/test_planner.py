"""Planner: candidate construction, cost ordering, backend agreement."""

import pytest

from repro.budget import Budget
from repro.errors import SchemaError
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.parser import parse
from repro.catalog import Catalog, domain_estimate
from repro.query.planner import build_plan, execute_plan


SCHEMA = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})
DB = Database.from_plain(
    SCHEMA, R=[("a", "b"), ("b", "c"), ("c", "d")], S=["a", "b"]
)


def _plan(text, database=DB):
    return build_plan(parse(text, schema=database.schema), database)


class TestCandidates:
    def test_conjunctive_comprehension_has_four_backends(self):
        plan = _plan("{ [x, z] | some y / U : R([x, y]) and R([y, z]) }")
        assert set(plan.backends()) == {
            "algebra",
            "col-stratified",
            "col-inflationary",
            "calculus",
        }

    def test_fact_driven_backends_beat_domain_enumeration(self):
        plan = _plan("{ [x, z] | some y / U : R([x, y]) and R([y, z]) }")
        assert plan.chosen.backend != "calculus"
        assert plan.candidate("calculus").cost > plan.chosen.cost

    def test_disjunction_is_calculus_only(self):
        plan = _plan("{ x | S(x) or R([x, x]) }")
        assert plan.backends() == ("calculus",)
        reasons = {r.name: r for r in plan.rewrites}
        assert not reasons["lower-to-algebra"].applied
        assert "disjunction" in reasons["lower-to-algebra"].note

    def test_literal_is_free(self):
        plan = _plan("{ 1, 2 }")
        assert plan.chosen.backend == "literal"
        assert plan.chosen.cost == 0

    def test_negation_gates_inflationary(self):
        plan = _plan(
            "rules { P(x) :- S(x), not T(x). T(x) :- R(x, x). } answer P"
        )
        assert "col-inflationary" not in plan.backends()
        negation_free = _plan("rules { T(x) :- S(x). } answer T")
        assert "col-inflationary" in negation_free.backends()

    def test_bk_mode_ordering(self):
        plan = _plan("bk { A(x) :- S(x). } answer A")
        assert plan.backends() == ("bk-hashjoin", "bk-dirty", "bk-naive")

    def test_gtm_routes_ordered_by_simulation_overhead(self):
        schema = Schema({"R": parse_type("U")})
        db = Database.from_plain(schema, R=["a", "b"])
        plan = _plan("gtm parity", db)
        assert plan.backends() == (
            "gtm",
            "tm",
            "col-compiled",
            "alg-compiled",
            "calc-terminal",
        )

    def test_unknown_predicate_raises(self):
        with pytest.raises(SchemaError):
            build_plan(parse("rules { T(x) :- NOPE(x). } answer T"), DB)

    def test_gtm_schema_mismatch_raises(self):
        with pytest.raises(SchemaError, match="expects"):
            _plan("gtm parity")  # parity wants R : U, DB has R : [U, U]


class TestGenericity:
    def test_typed_comprehension_is_generic(self):
        assert _plan("{ x | S(x) }").generic

    def test_obj_annotation_marks_invention(self):
        assert not _plan("{ x / Obj | S(x) }").generic

    def test_obj_quantifier_marks_invention(self):
        assert not _plan("{ x | some s : S(x) and x in s }").generic


class TestCostModel:
    def test_domain_estimate_grows_with_nesting(self):
        profile = Catalog.for_database(DB).profile()
        atom = domain_estimate(parse_type("U"), profile, 200)
        sets = domain_estimate(parse_type("{U}"), profile, 200)
        pairs = domain_estimate(parse_type("[U, U]"), profile, 200)
        assert atom < pairs
        assert atom < sets
        assert sets == 2**atom

    def test_costs_deterministic(self):
        text = "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"
        first = _plan(text)
        second = _plan(text)
        assert [(c.backend, c.cost) for c in first.candidates] == [
            (c.backend, c.cost) for c in second.candidates
        ]

    def test_profile_shapes_cost(self):
        small = _plan("{ [x, y] | R([x, y]) and S(x) }")
        bigger_db = Database.from_plain(
            SCHEMA,
            R=[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")],
            S=["a", "b", "c", "d"],
        )
        large = _plan("{ [x, y] | R([x, y]) and S(x) }", bigger_db)
        assert large.candidate("algebra").cost > small.candidate("algebra").cost


class TestExecution:
    def test_all_candidates_agree(self):
        text = "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"
        plan = _plan(text)
        results = {
            backend: execute_plan(plan, DB, Budget(), backend=backend).result
            for backend in plan.backends()
        }
        assert len(set(results.values())) == 1

    def test_report_carries_spend(self):
        plan = _plan("{ x | S(x) }")
        report = execute_plan(plan, DB, Budget())
        assert report.backend == plan.chosen.backend
        assert isinstance(report.spent, dict)

    def test_unknown_backend_rejected(self):
        plan = _plan("{ x | S(x) }")
        with pytest.raises(SchemaError, match="no backend"):
            execute_plan(plan, DB, Budget(), backend="quantum")

"""Cross-backend differential testing + golden EXPLAIN output.

Acceptance harness for the query layer: a bank of surface queries, each
planned against its database and executed on *every* candidate backend
the planner considers.  All defined results must agree exactly; an
undefined result (``?``) agrees with anything (Hoare equivalence — the
paper's machines only promise agreement where they halt).

The EXPLAIN output for the whole bank is golden-tested: plans are
deterministic (integer cost model, fixed candidate ordering), so the
rendered text must match ``golden/explain.txt`` byte for byte.
Regenerate after an intentional planner change with:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/query/test_differential.py
"""

import os
import pathlib

import pytest

from repro.budget import Budget
from repro.catalog import Catalog
from repro.errors import is_undefined
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.explain import render_actuals, render_plan
from repro.query.parser import parse
from repro.query.planner import build_plan, execute_plan


GOLDEN = pathlib.Path(__file__).parent / "golden" / "explain.txt"
GOLDEN_ACTUALS = pathlib.Path(__file__).parent / "golden" / "actuals.txt"

MAIN_SCHEMA = Schema(
    {
        "R": parse_type("[U, U]"),
        "S": parse_type("U"),
        "N": parse_type("{U}"),
    }
)
DATABASES = {
    "main": Database.from_plain(
        MAIN_SCHEMA,
        R=[("a", "b"), ("b", "c"), ("c", "d"), ("a", "a")],
        S=["a", "c"],
        N=[{"a", "b"}, {"c"}],
    ),
    # Tiny single-predicate databases for the machine routes: the
    # calc-terminal simulation enumerates domains, so keep these small.
    "atoms": Database.from_plain(
        Schema({"R": parse_type("U")}), R=["a", "b"]
    ),
    "pairs": Database.from_plain(
        Schema({"R": parse_type("[U, U]")}), R=[("a", "b"), ("b", "a")]
    ),
}

# (database key, query text) — ordering is part of the golden file.
BANK = [
    # Set literals
    ("main", "{ 1, 2 }"),
    ("main", "{ [1, 'a'], [2, 'b'] }"),
    # Comprehensions: conjunctive core (algebra + COL + calculus)
    ("main", "{ x | S(x) }"),
    ("main", "{ [x, y] | R([x, y]) }"),
    ("main", "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"),
    ("main", "{ [x, z] | some y / U : R([x, y]) and R([y, z]) and S(x) }"),
    ("main", "{ x | S(x) and x = 'a' }"),
    ("main", "{ [x, y] | R([x, y]) and S(x) }"),
    ("main", "{ [x, y] | R([x, y]) and x = y }"),
    ("main", "{ [x, y] | R([x, 'a']) and R([x, y]) }"),
    # Comprehensions with COL-only or calculus-only features
    ("main", "{ x | S(x) and not R([x, x]) }"),
    ("main", "{ [x, y] | R([x, y]) and x != y }"),
    ("main", "{ x | S(x) or R([x, x]) }"),
    ("main", "{ x | some s / {U} : N(s) and S(x) and x in s }"),
    ("main", "{ x | all y / U : R([x, y]) or S(x) }"),
    # Algebra pipelines
    ("main", "R |> select(1 = 2) |> project(1)"),
    ("main", "R |> project(1)"),
    ("main", "R |> select(1 = 'a') |> project(2)"),
    ("main", "S |> powerset"),
    # COL rule blocks
    ("main", "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T"),
    ("main", "rules { T(x) :- S(x). } answer T"),
    ("main", "rules { Q(x, y) :- R(x, y), S(x). } answer Q"),
    ("main", "rules { P(x) :- S(x), not T(x). T(x) :- R(x, x). } answer P"),
    # BK rule blocks
    ("main", "bk { A(x) :- S(x). } answer A"),
    ("atoms", "bk { A(x) :- R(x). } answer A"),
    ("atoms", "bk { A(x) :- R(x), R(x). } answer A"),
    # Generalized Turing machines via the simulation routes
    ("atoms", "gtm parity"),
    ("atoms", "gtm is_empty"),
    ("atoms", "gtm duplicate"),
    ("pairs", "gtm identity"),
    ("pairs", "gtm reverse"),
]


def _ids():
    return [f"{db}:{text[:40]}" for db, text in BANK]


def _plan(db_key, text):
    database = DATABASES[db_key]
    return build_plan(parse(text, schema=database.schema), database), database


def _reset_feedback():
    """Drop accumulated cardinality corrections on the bank databases.

    Golden renderings must not depend on which tests executed plans
    earlier in the same process, so each golden bank starts from a
    feedback-free catalog."""
    for database in DATABASES.values():
        Catalog.for_database(database).reset_feedback()


class TestDifferential:
    @pytest.mark.parametrize("db_key,text", BANK, ids=_ids())
    def test_all_backends_agree(self, db_key, text):
        plan, database = _plan(db_key, text)
        assert plan.candidates, f"no backend for {text!r}"
        results = {}
        for backend in plan.backends():
            report = execute_plan(plan, database, Budget(), backend=backend)
            results[backend] = report.result
        defined = {
            backend: result
            for backend, result in results.items()
            if not is_undefined(result)
        }
        # Hoare equivalence: every pair of *defined* results agrees.
        distinct = set(defined.values())
        assert len(distinct) <= 1, f"backends disagree on {text!r}: {defined}"
        # And the planner's chosen backend is one that actually halts
        # within a default budget for every bank query.
        assert plan.chosen.backend in defined or not defined

    def test_bank_is_large_enough(self):
        assert len(BANK) >= 25

    def test_bank_covers_every_form(self):
        forms = {_plan(db, text)[0].query.form for db, text in BANK}
        assert forms == {"literal", "comprehension", "pipeline", "rules", "bk", "gtm"}


class TestGoldenExplain:
    def _render_bank(self):
        _reset_feedback()
        chunks = []
        for db_key, text in BANK:
            plan, _ = _plan(db_key, text)
            chunks.append(f"### database: {db_key}\n{render_plan(plan)}")
        return "\n\n".join(chunks) + "\n"

    def test_explain_matches_golden(self):
        rendered = self._render_bank()
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN.write_text(rendered)
        assert GOLDEN.exists(), "golden file missing; run with REGEN_GOLDEN=1"
        assert rendered == GOLDEN.read_text()


#: (database key, query text, forced backend) — the physical-actuals
#: bank.  Every counter in the rendering is data-derived (rows, probes,
#: index builds, fixpoint rounds — no wall-clock), so the full actuals
#: section is as golden-testable as the plan itself.
ACTUALS_BANK = [
    ("main", "R |> select(1 = 'a') |> project(2)", "algebra"),
    ("main", "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }", "algebra"),
    (
        "main",
        "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T",
        "col-stratified",
    ),
    (
        "main",
        "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T",
        "col-naive",
    ),
    ("main", "rules { Q(x, y) :- R(x, y), S(x). } answer Q", "col-inflationary"),
    # Three-literal body written in pessimal textual order: the golden
    # rendering pins the cost-based order the kernel actually chose
    # (narrow S first, then index probes) with est= vs rows_ counters.
    (
        "main",
        "rules { Q(x, z) :- R(x, y), R(y, z), S(x). } answer Q",
        "col-stratified",
    ),
    ("main", "bk { A(x) :- S(x). } answer A", "bk-hashjoin"),
    ("atoms", "bk { A(x) :- R(x), R(x). } answer A", "bk-hashjoin"),
    ("main", "{ x | S(x) and not R([x, x]) }", "calculus"),
]


class TestGoldenActuals:
    def _render_bank(self):
        _reset_feedback()
        chunks = []
        for db_key, text, backend in ACTUALS_BANK:
            plan, database = _plan(db_key, text)
            report = execute_plan(plan, database, Budget(), backend=backend)
            chunks.append(
                f"### database: {db_key}\n### backend: {backend}\n"
                f"EXPLAIN ANALYZE {text}\n{render_actuals(report)}"
            )
        return "\n\n".join(chunks) + "\n"

    def test_actuals_match_golden(self):
        rendered = self._render_bank()
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_ACTUALS.write_text(rendered)
        assert GOLDEN_ACTUALS.exists(), (
            "golden file missing; run with REGEN_GOLDEN=1"
        )
        assert rendered == GOLDEN_ACTUALS.read_text()

    def test_physical_tree_present_for_kernel_backends(self):
        for db_key, text, backend in ACTUALS_BANK:
            plan, database = _plan(db_key, text)
            report = execute_plan(plan, database, Budget(), backend=backend)
            assert report.physical, f"no physical tree for {backend}: {text!r}"
            assert "Scan(" in report.physical

    def test_rule_kernels_render_chosen_order_with_estimates(self):
        # The three-literal entry: textual body order is R, R, S; the
        # kernel must render its cost-chosen per-rule order with one
        # Step per literal carrying est= (plan) and rows_ (actual).
        db_key, text, backend = next(
            entry for entry in ACTUALS_BANK if "S(x). } answer Q" in entry[1]
            and entry[2] == "col-stratified"
        )
        _reset_feedback()
        plan, database = _plan(db_key, text)
        report = execute_plan(plan, database, Budget(), backend=backend)
        physical = report.physical
        assert "RuleKernel(" in physical
        assert "est=" in physical
        assert "rows_out=" in physical
        # The narrow unary literal seeds the join: S's step renders
        # before either R step inside the kernel body.
        kernel_block = physical[physical.index("RuleKernel(") :]
        assert kernel_block.index("Step(S(") < kernel_block.index("Step(R(")
        # Cache traffic is surfaced alongside the tree.
        assert report.kernel_cache is not None
        assert report.kernel_cache["misses"] > 0

"""Unit tests for the invention semantics (Section 6)."""

import pytest

from repro.budget import Budget
from repro.calculus.ast import Not, Pred, Query, VarT
from repro.calculus.invention import (
    FormulaStages,
    countable_invention,
    finite_invention,
    invented_atoms,
    lower_stage,
    no_invention,
    terminal_invention,
    upper_stage,
)
from repro.errors import EvaluationError, is_undefined
from repro.model.schema import Database, Schema
from repro.model.types import U, parse_type
from repro.model.values import Atom, SetVal


def _unary(*labels):
    return Database(Schema({"R": parse_type("U")}), {"R": set(labels)})


#: {x | ¬R(x)} — its value grows with every invented atom.
def _non_r_query():
    return Query(VarT("x"), U, Not(Pred("R", VarT("x"))), {"x": U})


class TestStages:
    def test_invented_atoms_distinct(self):
        atoms = invented_atoms(5)
        assert len(set(atoms)) == 5

    def test_upper_stage_sees_invented(self):
        query = _non_r_query()
        upper = upper_stage(query, _unary(1), 2)
        assert Atom("ι0") in upper and Atom("ι1") in upper

    def test_lower_stage_deletes_invented(self):
        query = _non_r_query()
        lower = lower_stage(query, _unary(1), 2)
        assert lower == SetVal([])

    def test_stage_zero_is_plain_semantics(self):
        query = _non_r_query()
        assert upper_stage(query, _unary(1), 0) == no_invention(query, _unary(1))

    def test_collision_guard(self):
        query = _non_r_query()
        with pytest.raises(EvaluationError):
            upper_stage(query, _unary("ι0"), 1)


class TestFiniteInvention:
    def test_union_over_stages(self):
        query = _non_r_query()
        # Every stage's lower value is empty here (all invented objects
        # are deleted, and adom is fully in R).
        assert finite_invention(query, _unary(1), stages=3) == SetVal([])

    def test_monotone_in_stages(self):
        class Threshold:
            """{yes} once at least 2 invented atoms are available."""

            name = "threshold"

            def stage(self, database, atoms, budget):
                return SetVal([Atom("yes")]) if len(atoms) >= 2 else SetVal([])

        query = Threshold()
        assert finite_invention(query, _unary(1), stages=1) == SetVal([])
        assert finite_invention(query, _unary(1), stages=2) == SetVal([Atom("yes")])
        assert finite_invention(query, _unary(1), stages=5) == SetVal([Atom("yes")])


class TestCountableInvention:
    def test_single_large_stage(self):
        class CountsStage:
            name = "counts"

            def stage(self, database, atoms, budget):
                return SetVal([Atom(len(atoms))])

        assert countable_invention(CountsStage(), _unary(1), stage=7) == SetVal(
            [Atom(7)]
        )


class TestTerminalInvention:
    def test_fires_at_least_stage_with_invented_output(self):
        query = _non_r_query()
        # Q|^1 already contains ι0 (an invented atom not in R), so the
        # terminal stage is 1 and the answer is Q|_1 = ∅.
        stages_seen = []
        answer = terminal_invention(
            query, _unary(1), on_stage=lambda i, u: stages_seen.append(i)
        )
        assert answer == SetVal([])
        assert stages_seen == [0, 1]

    def test_no_terminal_stage_is_undefined(self):
        # R(x) never mentions invented atoms.
        query = Query(VarT("x"), U, Pred("R", VarT("x")), {"x": U})
        answer = terminal_invention(query, _unary(1), Budget(stages=5))
        assert is_undefined(answer)

    def test_custom_staged_query(self):
        class FiresAtThree:
            name = "fires-at-3"

            def stage(self, database, atoms, budget):
                if len(atoms) >= 3:
                    return SetVal([Atom("answer"), atoms[0]])
                return SetVal([Atom("too-early")])

        fired = []
        answer = terminal_invention(
            FiresAtThree(), _unary(1), on_stage=lambda i, u: fired.append(i)
        )
        # Invented atom leaks at stage 3; answer keeps only clean objects.
        assert answer == SetVal([Atom("answer")])
        assert fired[-1] == 3

    def test_formula_stages_adapter(self):
        adapter = FormulaStages(_non_r_query())
        out = adapter.stage(_unary(1), invented_atoms(1), Budget())
        assert Atom("ι0") in out

"""Unit tests for limited-interpretation calculus evaluation."""

import pytest

from repro.budget import Budget
from repro.calculus.ast import (
    And,
    Compare,
    ConstT,
    Exists,
    Forall,
    In,
    Not,
    Or,
    Pred,
    Query,
    TupT,
    VarT,
)
from repro.calculus.eval import Evaluator, evaluate_query
from repro.errors import BudgetExceeded
from repro.model.schema import Database, Schema
from repro.model.types import OBJ, SetType, TupleType, U, parse_type
from repro.model.values import Atom, SetVal, Tup


def _unary(*labels):
    return Database(Schema({"R": parse_type("U")}), {"R": set(labels)})


def _binary(rows):
    return Database(Schema({"R": parse_type("[U, U]")}), {"R": rows})


class TestAtomsAndConnectives:
    def test_membership_query(self):
        query = Query(VarT("x"), U, Pred("R", VarT("x")), {"x": U})
        assert evaluate_query(query, _unary(1, 2)) == SetVal([Atom(1), Atom(2)])

    def test_negation(self):
        query = Query(VarT("x"), U, Not(Pred("R", VarT("x"))), {"x": U})
        # Limited interpretation: x ranges over adom = {1, 2}, both in R.
        assert evaluate_query(query, _unary(1, 2)) == SetVal([])

    def test_negation_sees_constants(self):
        query = Query(
            VarT("x"),
            U,
            And(Not(Pred("R", VarT("x"))), Compare(VarT("x"), ConstT("c"))),
            {"x": U},
        )
        # The constant c extends the domain.
        assert evaluate_query(query, _unary(1)) == SetVal([Atom("c")])

    def test_disjunction(self):
        query = Query(
            VarT("x"),
            U,
            Or(Compare(VarT("x"), ConstT(1)), Compare(VarT("x"), ConstT(2))),
            {"x": U},
        )
        assert evaluate_query(query, _unary(1, 2, 3)) == SetVal([Atom(1), Atom(2)])

    def test_equality_on_tuples(self):
        query = Query(
            TupT([VarT("x"), VarT("y")]),
            TupleType([U, U]),
            And(Pred("R", TupT([VarT("x"), VarT("y")])), Compare(VarT("x"), VarT("y"))),
            {"x": U, "y": U},
        )
        out = evaluate_query(query, _binary({(1, 1), (1, 2)}))
        assert out == SetVal([Tup([Atom(1), Atom(1)])])


class TestQuantifiers:
    def test_exists(self):
        query = Query(
            VarT("x"),
            U,
            Exists("y", U, Pred("R", TupT([VarT("x"), VarT("y")]))),
            {"x": U},
        )
        assert evaluate_query(query, _binary({(1, 2), (3, 4)})) == SetVal(
            [Atom(1), Atom(3)]
        )

    def test_forall(self):
        # Atoms related to every domain element.
        query = Query(
            VarT("x"),
            U,
            Forall("y", U, Pred("R", TupT([VarT("x"), VarT("y")]))),
            {"x": U},
        )
        database = _binary({(1, 1), (1, 2), (2, 1)})
        assert evaluate_query(query, database) == SetVal([Atom(1)])

    def test_set_typed_quantifier(self):
        # ∃s/{U}: x ∈ s ∧ 1 ∈ s — true for every domain atom.
        query = Query(
            VarT("x"),
            U,
            Exists("s", SetType(U), And(In(VarT("x"), VarT("s")),
                                        In(ConstT(1), VarT("s")))),
            {"x": U},
        )
        out = evaluate_query(query, _unary(1, 2))
        assert out == SetVal([Atom(1), Atom(2)])

    def test_variable_shadowing(self):
        # Inner ∃x shadows the free x; outer binding must survive.
        query = Query(
            VarT("x"),
            U,
            And(
                Pred("R", VarT("x")),
                Exists("x", U, Compare(VarT("x"), ConstT(1))),
            ),
            {"x": U},
        )
        assert evaluate_query(query, _unary(1, 2)) == SetVal([Atom(1), Atom(2)])

    def test_membership_on_non_set_is_false(self):
        query = Query(
            VarT("x"), U, In(VarT("x"), VarT("x")), {"x": U}
        )
        assert evaluate_query(query, _unary(1)) == SetVal([])


class TestObjApproximation:
    def test_obj_bound_controls_domain(self):
        query = Query(
            VarT("x"),
            U,
            Exists("s", SetType(OBJ), In(VarT("x"), VarT("s"))),
            {"x": U},
        )
        out = evaluate_query(query, _unary(1, 2), obj_bound=40)
        assert out == SetVal([Atom(1), Atom(2)])

    def test_evaluator_domain_caching(self):
        query = Query(VarT("x"), U, Pred("R", VarT("x")), {"x": U})
        evaluator = Evaluator(query, _unary(1))
        first = evaluator.domain(U)
        second = evaluator.domain(U)
        assert first is second


class TestBudgets:
    def test_budget_enforced(self):
        query = Query(
            VarT("x"),
            U,
            Exists("s", SetType(U), In(VarT("x"), VarT("s"))),
            {"x": U},
        )
        with pytest.raises(BudgetExceeded):
            evaluate_query(query, _unary(1, 2, 3, 4), budget=Budget(steps=10))

    def test_extension_atoms_extend_domains(self):
        query = Query(VarT("x"), U, Compare(VarT("x"), VarT("x")), {"x": U})
        extended = evaluate_query(query, _unary(1), extension_atoms=[Atom("ι0")])
        assert Atom("ι0") in extended

"""Unit tests for the calculus AST."""

import pytest

from repro.calculus.ast import (
    And,
    Compare,
    ConstT,
    Exists,
    Forall,
    In,
    Not,
    Or,
    Pred,
    Query,
    TupT,
    VarT,
)
from repro.errors import TypeCheckError
from repro.model.types import OBJ, SetType, U
from repro.model.values import Atom


class TestTerms:
    def test_var_names(self):
        with pytest.raises(TypeCheckError):
            VarT("")

    def test_const_coercion(self):
        assert ConstT(5).value == Atom(5)

    def test_tuple_terms(self):
        term = TupT([VarT("x"), ConstT(1)])
        assert term.variables() == {"x"}
        with pytest.raises(TypeCheckError):
            TupT([])

    def test_strings_coerce_to_vars_in_formulas(self):
        formula = Compare("x", "y")
        assert formula.free_variables() == {"x", "y"}


class TestFormulas:
    def test_free_variables(self):
        formula = And(
            Pred("R", TupT([VarT("x"), VarT("y")])),
            Exists("y", U, Compare(VarT("y"), VarT("z"))),
        )
        assert formula.free_variables() == {"x", "y", "z"}

    def test_connective_flattening(self):
        formula = And(Compare("a", "b"), And(Compare("c", "d"), Compare("e", "f")))
        assert len(formula.parts) == 3

    def test_empty_connectives_rejected(self):
        with pytest.raises(TypeCheckError):
            And()
        with pytest.raises(TypeCheckError):
            Or()

    def test_quantifier_binding(self):
        formula = Forall("x", U, Compare(VarT("x"), VarT("x")))
        assert formula.free_variables() == set()


class TestQuery:
    def test_free_types_must_cover(self):
        with pytest.raises(TypeCheckError):
            Query(VarT("x"), U, Pred("R", VarT("x")), free_types={})

    def test_no_extra_free_types(self):
        with pytest.raises(TypeCheckError):
            Query(
                VarT("x"),
                U,
                Pred("R", VarT("x")),
                free_types={"x": U, "ghost": U},
            )

    def test_constants_collected(self):
        query = Query(
            ConstT("c"),
            U,
            Compare(ConstT("a"), ConstT("b")),
            free_types={},
        )
        assert query.constants() == frozenset({Atom("a"), Atom("b"), Atom("c")})

    def test_is_typed(self):
        typed = Query(VarT("x"), U, Pred("R", VarT("x")), free_types={"x": U})
        assert typed.is_typed()
        untyped = Query(
            VarT("x"),
            U,
            Exists("s", SetType(OBJ), In(VarT("x"), VarT("s"))),
            free_types={"x": U},
        )
        assert not untyped.is_typed()


class TestCalcExistentialFragment:
    def test_positive_existential_obj(self):
        query = Query(
            VarT("x"),
            U,
            Exists("s", SetType(OBJ), In(VarT("x"), VarT("s"))),
            free_types={"x": U},
        )
        assert query.is_existential_obj()

    def test_universal_obj_excluded(self):
        query = Query(
            VarT("x"),
            U,
            Forall("s", SetType(OBJ), In(VarT("x"), VarT("s"))),
            free_types={"x": U},
        )
        assert not query.is_existential_obj()

    def test_negated_existential_obj_excluded(self):
        query = Query(
            VarT("x"),
            U,
            Not(Exists("s", SetType(OBJ), In(VarT("x"), VarT("s")))),
            free_types={"x": U},
        )
        assert not query.is_existential_obj()

    def test_double_negation_restores_polarity(self):
        query = Query(
            VarT("x"),
            U,
            Not(Not(Exists("s", SetType(OBJ), In(VarT("x"), VarT("s"))))),
            free_types={"x": U},
        )
        assert query.is_existential_obj()

    def test_obj_typed_free_var_excluded(self):
        query = Query(
            VarT("s"),
            SetType(OBJ),
            In(ConstT(1), VarT("s")),
            free_types={"s": SetType(OBJ)},
        )
        assert not query.is_existential_obj()

    def test_typed_queries_are_trivially_in_fragment(self):
        query = Query(VarT("x"), U, Pred("R", VarT("x")), free_types={"x": U})
        assert query.is_existential_obj()

"""Unit tests for the stock calculus queries (incl. Example 6.2)."""

import pytest

from repro.budget import Budget
from repro.calculus.eval import evaluate_query
from repro.calculus.invention import (
    countable_invention,
    finite_invention,
    upper_stage,
)
from repro.calculus.library import (
    CoHaltingStages,
    HaltingStages,
    YES,
    join_query,
    membership_query,
    obj_pair_query,
    parity_query,
    projection_query,
    tc_query,
)
from repro.gtm.tm import unary_machines
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal
from repro.workloads import chain_graph, unary_instance


def _unlimited():
    return Budget(steps=None, objects=None)


class TestFirstOrderQueries:
    def test_membership(self, unary_db):
        assert evaluate_query(membership_query(), unary_db) == unary_db["R"]

    def test_projection(self, binary_db):
        out = evaluate_query(projection_query(), binary_db)
        assert out == SetVal([Atom(1), Atom(2), Atom(3)])

    def test_join(self):
        schema = Schema({"R": parse_type("[U, U]"), "S": parse_type("[U, U]")})
        database = Database(schema, {"R": {(1, 2)}, "S": {(2, 3), (4, 5)}})
        out = evaluate_query(join_query(), database)
        assert len(out) == 1


class TestParity:
    @pytest.mark.parametrize("size,expected", [(0, True), (1, False), (2, True), (3, False)])
    def test_parity(self, size, expected):
        out = evaluate_query(parity_query(), unary_instance(size), budget=_unlimited())
        assert (out == SetVal([YES])) == expected

    def test_parity_is_typed(self):
        assert parity_query().is_typed()


class TestTransitiveClosure:
    def test_chain(self):
        out = evaluate_query(tc_query(), chain_graph(2), budget=_unlimited())
        assert len(out) == 3

    def test_agrees_with_algebra(self):
        from repro.algebra.eval import run_program
        from repro.algebra.library import transitive_closure

        database = chain_graph(2)
        assert evaluate_query(tc_query(), database, budget=_unlimited()) == run_program(
            transitive_closure(), database
        )


class TestObjQuery:
    def test_reduces_to_membership(self, unary_db):
        out = evaluate_query(obj_pair_query(), unary_db, obj_bound=30)
        assert out == unary_db["R"]

    def test_fragment(self):
        query = obj_pair_query()
        assert not query.is_typed()
        assert query.is_existential_obj()


class TestExample62:
    """The halting query and its complement, at bounded stages."""

    def test_halting_machine_eventually_visible(self):
        machines = unary_machines()
        halting = HaltingStages(machines["slow_halt"])
        database = unary_instance(3)  # slow_halt needs ~n^2 shuttle steps
        values = [upper_stage(halting, database, i) for i in range(6)]
        # Once visible, stays visible (monotone in the stage).
        seen = [v == SetVal([YES]) for v in values]
        assert seen[-1] is True
        assert seen == sorted(seen)

    def test_never_halting_invisible_at_all_stages(self):
        machines = unary_machines()
        halting = HaltingStages(machines["never_halts"])
        database = unary_instance(2)
        for stage in range(5):
            assert upper_stage(halting, database, stage) == SetVal([])

    def test_finite_invention_decides_halting(self):
        machines = unary_machines()
        halting = HaltingStages(machines["halts_iff_even"])
        assert finite_invention(halting, unary_instance(2), 4) == SetVal([YES])
        assert finite_invention(halting, unary_instance(3), 4) == SetVal([])

    def test_co_halting_needs_countable_invention(self):
        machines = unary_machines()
        co_halt = CoHaltingStages(machines["slow_halt"])
        database = unary_instance(2)
        # slow_halt needs ~3n steps > capacity(0) = n^2 at n = 2: stage 0
        # wrongly says "not halted", so the finite-invention union is
        # polluted — the Theorem 6.1 gap made visible...
        assert upper_stage(co_halt, database, 0) == SetVal([YES])
        assert finite_invention(co_halt, database, 6) == SetVal([YES])  # wrong!
        # ...whereas the countable-invention limit stabilises correctly.
        assert countable_invention(co_halt, database, stage=8) == SetVal([])

    def test_co_halting_correct_for_divergent_machine(self):
        machines = unary_machines()
        co_halt = CoHaltingStages(machines["never_halts"])
        assert countable_invention(co_halt, unary_instance(3), stage=8) == SetVal(
            [YES]
        )

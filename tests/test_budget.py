"""Unit tests for budgets and the undefined value."""

import pickle

import pytest

from repro.budget import Budget, DEFAULT_LIMITS
from repro.errors import BudgetExceeded, UNDEFINED, is_undefined


class TestBudget:
    def test_charge_within_limit(self):
        budget = Budget(steps=10)
        for _ in range(10):
            budget.charge("steps")
        assert budget.spent("steps") == 10
        assert budget.remaining("steps") == 0

    def test_charge_past_limit(self):
        budget = Budget(steps=3)
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(4):
                budget.charge("steps")
        assert info.value.resource == "steps"
        assert info.value.limit == 3

    def test_unlimited_resource(self):
        budget = Budget(steps=None)
        budget.charge("steps", 10**9)
        assert budget.remaining("steps") is None

    def test_bulk_charge(self):
        budget = Budget(objects=100)
        budget.charge("objects", 60)
        with pytest.raises(BudgetExceeded):
            budget.charge("objects", 41)

    def test_independent_counters(self):
        budget = Budget(steps=5, iterations=5)
        budget.charge("steps", 5)
        budget.charge("iterations", 2)  # still fine
        assert budget.spent("iterations") == 2

    def test_reset(self):
        budget = Budget(steps=5)
        budget.charge("steps", 5)
        budget.reset()
        budget.charge("steps", 5)  # no raise

    def test_factories(self):
        tiny = Budget.tiny()
        assert tiny.steps < DEFAULT_LIMITS["steps"]
        unlimited = Budget.unlimited()
        assert unlimited.steps is None

    def test_defaults_are_generous(self):
        budget = Budget()
        budget.charge("steps", DEFAULT_LIMITS["steps"])
        with pytest.raises(BudgetExceeded):
            budget.charge("steps")


class TestUndefined:
    def test_singleton(self):
        assert UNDEFINED is type(UNDEFINED)()

    def test_falsy(self):
        assert not UNDEFINED

    def test_is_undefined(self):
        assert is_undefined(UNDEFINED)
        assert not is_undefined(None)
        assert not is_undefined(0)

    def test_repr(self):
        assert repr(UNDEFINED) == "?"

    def test_pickle_round_trip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(UNDEFINED)) is UNDEFINED


class TestChargeAtomicity:
    def test_failed_charge_is_not_recorded(self):
        # Regression: a rejected charge used to record the over-limit
        # amount before raising, so spent() reported past the limit.
        budget = Budget(steps=10)
        budget.charge("steps", 7)
        with pytest.raises(BudgetExceeded):
            budget.charge("steps", 7)
        assert budget.spent("steps") == 7
        assert budget.remaining("steps") == 3
        budget.charge("steps", 3)  # the remainder is still chargeable

    def test_spent_all_snapshot(self):
        budget = Budget()
        budget.charge("steps", 5)
        budget.charge("facts", 2)
        snapshot = budget.spent_all()
        assert snapshot == {"steps": 5, "facts": 2}
        budget.charge("steps")
        assert snapshot["steps"] == 5  # a copy, not a view


class TestChildBudgets:
    def test_child_defaults_to_remaining(self):
        budget = Budget(steps=100, facts=50)
        budget.charge("steps", 40)
        child = budget.child()
        assert child.steps == 60
        assert child.facts == 50

    def test_child_overrides(self):
        budget = Budget(steps=100)
        child = budget.child(steps=5, facts=None)
        assert child.steps == 5
        assert child.facts is None

    def test_child_unknown_resource_rejected(self):
        with pytest.raises(TypeError):
            Budget().child(watts=3)

    def test_child_charges_independently(self):
        budget = Budget(steps=10)
        child = budget.child()
        child.charge("steps", 10)
        assert budget.spent("steps") == 0
        with pytest.raises(BudgetExceeded):
            child.charge("steps")

    def test_unlimited_stays_unlimited(self):
        assert Budget(steps=None).child().steps is None

"""Property-based tests: algebraic laws and genericity of the operators.

The relaxed algebra's operators must themselves be generic — applying a
permutation of U to the operands and to the result commutes.  We verify
this for every operator over random heterogeneous instances, plus the
standard algebraic identities the evaluator should satisfy.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.ast import (
    Collapse,
    Diff,
    Eq,
    Expand,
    Intersect,
    Nest,
    Powerset,
    Product,
    Project,
    Select,
    Union,
    Unnest,
    Var,
)
from repro.algebra.eval import eval_expr
from repro.budget import Budget
from repro.model.genericity import Permutation
from repro.model.values import Atom, SetVal, Tup


def _atoms():
    return st.integers(0, 4).map(Atom)


def _members():
    return st.one_of(
        _atoms(),
        st.tuples(_atoms(), _atoms()).map(lambda t: Tup(list(t))),
        st.lists(_atoms(), max_size=2).map(SetVal),
    )


def _instances():
    return st.lists(_members(), max_size=5).map(SetVal)


def _perms():
    return st.permutations(list(range(5))).map(
        lambda image: Permutation({Atom(i): Atom(j) for i, j in enumerate(image)})
    )


def ev(expr, **vars):
    return eval_expr(expr, dict(vars), Budget(objects=None, steps=None))


class TestAlgebraicLaws:
    @given(_instances(), _instances())
    @settings(max_examples=80)
    def test_union_commutes(self, a, b):
        assert ev(Union(Var("a"), Var("b")), a=a, b=b) == ev(
            Union(Var("b"), Var("a")), a=a, b=b
        )

    @given(_instances(), _instances(), _instances())
    @settings(max_examples=60)
    def test_union_associates(self, a, b, c):
        left = ev(Union(Union(Var("a"), Var("b")), Var("c")), a=a, b=b, c=c)
        right = ev(Union(Var("a"), Union(Var("b"), Var("c"))), a=a, b=b, c=c)
        assert left == right

    @given(_instances(), _instances())
    @settings(max_examples=80)
    def test_diff_intersect_complement(self, a, b):
        diff = ev(Diff(Var("a"), Var("b")), a=a, b=b)
        inter = ev(Intersect(Var("a"), Var("b")), a=a, b=b)
        assert ev(Union(Var("d"), Var("i")), d=diff, i=inter) == a

    @given(_instances())
    @settings(max_examples=80)
    def test_collapse_expand_inverse(self, a):
        assert ev(Expand(Collapse(Var("a"))), a=a) == a

    @given(st.lists(st.tuples(_atoms(), _atoms()), max_size=5))
    @settings(max_examples=80)
    def test_nest_unnest_inverse_on_relations(self, rows):
        relation = SetVal([Tup(list(r)) for r in rows])
        nested = ev(Nest(Var("r"), [2]), r=relation)
        assert ev(Unnest(Var("n"), 2), n=nested) == relation

    @given(_instances())
    @settings(max_examples=60)
    def test_powerset_size(self, a):
        result = ev(Powerset(Var("a")), a=a)
        assert len(result) == 2 ** len(a)

    @given(_instances())
    @settings(max_examples=60)
    def test_select_true_is_identity_on_right_shapes(self, a):
        # σ[1=1] keeps exactly the members exposing coordinate 1 — all.
        assert ev(Select(Var("a"), Eq(1, 1)), a=a) == a

    @given(_instances(), _instances())
    @settings(max_examples=60)
    def test_product_size(self, a, b):
        result = ev(Product(Var("a"), Var("b")), a=a, b=b)
        # Distinct pairs may collapse only if coordinate tuples equal;
        # with distinct member pairs they never do.
        assert len(result) <= len(a) * len(b)
        if a and b:
            assert len(result) >= 1


class TestOperatorGenericity:
    @given(_instances(), _instances(), _perms())
    @settings(max_examples=60)
    def test_binary_ops_commute_with_permutations(self, a, b, perm):
        for op in (Union, Diff, Intersect, Product):
            direct = perm(ev(op(Var("a"), Var("b")), a=a, b=b))
            permuted = ev(op(Var("a"), Var("b")), a=perm(a), b=perm(b))
            assert direct == permuted

    @given(_instances(), _perms())
    @settings(max_examples=60)
    def test_unary_ops_commute_with_permutations(self, a, perm):
        for expr in (
            Powerset(Var("a")),
            Collapse(Var("a")),
            Expand(Var("a")),
            Project(Var("a"), [1]),
            Select(Var("a"), Eq(1, 1)),
            Nest(Var("a"), [1]),
        ):
            assert perm(ev(expr, a=a)) == ev(expr, a=perm(a))

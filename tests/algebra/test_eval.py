"""Unit tests for the algebra evaluator (relaxed dynamic semantics)."""


from repro.algebra.ast import (
    Assign,
    Collapse,
    Diff,
    EncodeInput,
    Eq,
    EqConst,
    Expand,
    Intersect,
    Member,
    Nest,
    Powerset,
    Product,
    Program,
    Project,
    Select,
    Undefine,
    Union,
    Unnest,
    Var,
    While,
)
from repro.algebra.eval import coordinate, counter_sequence_empty, eval_expr, run_program
from repro.budget import Budget
from repro.errors import UNDEFINED
from repro.model.values import Atom, SetVal, Tup


def ev(expr, **vars):
    env = dict(vars)
    return eval_expr(expr, env, Budget())


def rel(*rows):
    from repro.model.values import obj

    return SetVal([obj(r) for r in rows])


class TestSetOperators:
    def test_union(self):
        assert ev(Union(Var("a"), Var("b")), a=rel(1), b=rel(2)) == rel(1, 2)

    def test_heterogeneous_union(self):
        mixed = ev(Union(Var("a"), Var("b")), a=rel(1), b=rel((1, 2)))
        assert len(mixed) == 2  # an untyped instance

    def test_diff(self):
        assert ev(Diff(Var("a"), Var("b")), a=rel(1, 2), b=rel(2)) == rel(1)

    def test_intersect(self):
        assert ev(Intersect(Var("a"), Var("b")), a=rel(1, 2), b=rel(2, 3)) == rel(2)


class TestProduct:
    def test_pairs_of_atoms(self):
        out = ev(Product(Var("a"), Var("b")), a=rel(1), b=rel(2))
        assert out == rel((1, 2))

    def test_flattens_coordinates(self):
        out = ev(Product(Var("a"), Var("b")), a=rel((1, 2)), b=rel((3, 4)))
        assert out == rel((1, 2, 3, 4))

    def test_mixed_shapes(self):
        out = ev(Product(Var("a"), Var("b")), a=rel(1), b=rel((2, 3)))
        assert out == rel((1, 2, 3))

    def test_empty(self):
        assert ev(Product(Var("a"), Var("b")), a=rel(), b=rel(1)) == rel()


class TestSelect:
    def test_eq_cols(self):
        out = ev(Select(Var("r"), Eq(1, 2)), r=rel((1, 1), (1, 2)))
        assert out == rel((1, 1))

    def test_eq_const(self):
        out = ev(Select(Var("r"), EqConst(2, 5)), r=rel((1, 5), (1, 6)))
        assert out == rel((1, 5))

    def test_conjunction(self):
        out = ev(
            Select(Var("r"), [Eq(1, 2), EqConst(1, 3)]),
            r=rel((3, 3), (3, 4), (2, 2)),
        )
        assert out == rel((3, 3))

    def test_membership(self):
        row = Tup([Atom(1), SetVal([Atom(1), Atom(2)])])
        out = ev(Select(Var("r"), Member(1, 2)), r=SetVal([row]))
        assert out == SetVal([row])

    def test_tuple_membership(self):
        container = SetVal([Tup([Atom(1), Atom(2)])])
        row = Tup([Atom(1), Atom(2), container])
        out = ev(Select(Var("r"), Member((1, 2), 3)), r=SetVal([row]))
        assert out == SetVal([row])

    def test_wrong_shape_ignored(self):
        # Relaxed semantics: members without the coordinate are dropped.
        out = ev(Select(Var("r"), Eq(1, 2)), r=rel(7, (1, 1)))
        assert out == rel((1, 1))

    def test_bare_member_coordinate_one(self):
        out = ev(Select(Var("r"), EqConst(1, 7)), r=rel(7, 8))
        assert out == rel(7)


class TestProject:
    def test_single_column_gives_bare_values(self):
        assert ev(Project(Var("r"), [1]), r=rel((1, 2), (3, 4))) == rel(1, 3)

    def test_multi_column(self):
        assert ev(Project(Var("r"), [2, 1]), r=rel((1, 2))) == rel((2, 1))

    def test_duplicate_columns(self):
        assert ev(Project(Var("r"), [1, 1]), r=rel(5)) == rel((5, 5))

    def test_out_of_range_ignored(self):
        assert ev(Project(Var("r"), [3]), r=rel((1, 2), (1, 2, 3))) == rel(3)


class TestNestUnnest:
    def test_nest_groups(self):
        out = ev(Nest(Var("r"), [2]), r=rel((1, 2), (1, 3), (4, 5)))
        assert out == SetVal(
            [
                Tup([Atom(1), SetVal([Atom(2), Atom(3)])]),
                Tup([Atom(4), SetVal([Atom(5)])]),
            ]
        )

    def test_nest_everything_collapses_to_set(self):
        out = ev(Nest(Var("r"), [1, 2]), r=rel((1, 2), (3, 4)))
        assert out == SetVal([SetVal([Tup([Atom(1), Atom(2)]), Tup([Atom(3), Atom(4)])])])

    def test_unnest_inverts_nest(self):
        original = rel((1, 2), (1, 3), (4, 5))
        nested = ev(Nest(Var("r"), [2]), r=original)
        assert ev(Unnest(Var("n"), 2), n=nested) == original

    def test_unnest_bare_sets_flattens(self):
        out = ev(Unnest(Var("r"), 1), r=SetVal([SetVal([Atom(1), Atom(2)])]))
        assert out == rel(1, 2)

    def test_unnest_non_set_ignored(self):
        out = ev(Unnest(Var("r"), 2), r=rel((1, 2)))
        assert out == rel()


class TestVerticalOperators:
    def test_powerset(self):
        out = ev(Powerset(Var("r")), r=rel(1, 2))
        assert len(out) == 4
        assert SetVal([]) in out
        assert SetVal([Atom(1), Atom(2)]) in out

    def test_collapse(self):
        out = ev(Collapse(Var("r")), r=rel(1, 2))
        assert out == SetVal([SetVal([Atom(1), Atom(2)])])

    def test_collapse_empty_gives_singleton_empty_set(self):
        assert ev(Collapse(Var("r")), r=rel()) == SetVal([SetVal([])])

    def test_expand(self):
        out = ev(Expand(Var("r")), r=SetVal([SetVal([Atom(1)]), SetVal([Atom(2)])]))
        assert out == rel(1, 2)

    def test_expand_ignores_non_sets(self):
        out = ev(Expand(Var("r")), r=SetVal([Atom(1), SetVal([Atom(2)])]))
        assert out == rel(2)

    def test_collapse_expand_inverse(self):
        original = rel(1, (2, 3))
        assert ev(Expand(Collapse(Var("r"))), r=original) == original


class TestUndefine:
    def test_nonempty_passes_through(self):
        assert ev(Undefine(Var("r")), r=rel(1)) == rel(1)

    def test_empty_gives_undefined(self):
        assert ev(Undefine(Var("r")), r=rel()) is UNDEFINED


class TestPrograms:
    def test_simple_program(self, binary_db):
        program = Program(
            [Assign("ANS", Project(Var("R"), [1]))], input_names=["R"]
        )
        assert run_program(program, binary_db) == rel(1, 2, 3)

    def test_undefined_propagates(self, binary_db):
        program = Program(
            [
                Assign("empty", Diff(Var("R"), Var("R"))),
                Assign("mid", Undefine(Var("empty"))),
                Assign("ANS", Var("R")),
            ],
            input_names=["R"],
        )
        assert run_program(program, binary_db) is UNDEFINED

    def test_while_loop_runs(self, binary_db):
        # Drain R one "layer" at a time (delta trick).
        program = Program(
            [
                Assign("acc", Var("R")),
                Assign("delta", Var("R")),
                While(
                    "OUT",
                    "acc",
                    "delta",
                    [Assign("delta", Diff(Var("delta"), Var("delta")))],
                ),
                Assign("ANS", Var("OUT")),
            ],
            input_names=["R"],
        )
        assert run_program(program, binary_db) == binary_db["R"]

    def test_nonterminating_while_is_undefined(self, binary_db):
        program = Program(
            [
                Assign("x", Var("R")),
                Assign("y", Var("R")),
                While("OUT", "x", "y", [Assign("x", Var("x"))]),
                Assign("ANS", Var("OUT")),
            ],
            input_names=["R"],
        )
        assert run_program(program, binary_db, Budget(iterations=100)) is UNDEFINED

    def test_zero_iteration_while(self, binary_db):
        program = Program(
            [
                Assign("x", Var("R")),
                Assign("y", Diff(Var("R"), Var("R"))),
                While("OUT", "x", "y", [Assign("x", Diff(Var("x"), Var("x")))]),
                Assign("ANS", Var("OUT")),
            ],
            input_names=["R"],
        )
        # Condition empty at entry: body never runs; OUT = initial x.
        assert run_program(program, binary_db) == binary_db["R"]


class TestEncodeInput:
    def test_positions_are_von_neumann(self, unary_db):
        program = Program(
            [Assign("ANS", EncodeInput(["R"]))], input_names=["R"]
        )
        out = run_program(program, unary_db)
        positions = {row.items[0] for row in out.items}
        expected = set(counter_sequence_empty(len(out)))
        assert positions == expected

    def test_symbols_cover_listing(self, unary_db):
        program = Program(
            [Assign("ANS", EncodeInput(["R"]))], input_names=["R"]
        )
        out = run_program(program, unary_db)
        symbols = {row.items[1] for row in out.items}
        assert Atom("(") in symbols and Atom(")") in symbols
        assert {Atom(1), Atom(2), Atom(3)} <= symbols

    def test_atom_order_override(self, unary_db):
        program = Program(
            [Assign("ANS", EncodeInput(["R"]))], input_names=["R"]
        )
        default = run_program(program, unary_db)
        reordered = run_program(
            program, unary_db, atom_order=[Atom(3), Atom(2), Atom(1)]
        )
        assert default != reordered  # the listing moved ...
        assert {r.items[1] for r in default.items} == {
            r.items[1] for r in reordered.items
        }  # ... but the symbols are the same


class TestCoordinateHelper:
    def test_tuple_coordinates(self):
        row = Tup([Atom(1), Atom(2)])
        assert coordinate(row, 1) == Atom(1)
        assert coordinate(row, 3) is None

    def test_bare_member(self):
        assert coordinate(Atom(5), 1) == Atom(5)
        assert coordinate(Atom(5), 2) is None

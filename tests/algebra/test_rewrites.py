"""Unit tests for the nested-while collapse (Theorem 4.1(b)(iii))."""

from hypothesis import given, settings, strategies as st

from repro.algebra.ast import Assign, Diff, Program, Var, While
from repro.algebra.eval import eval_expr, run_program
from repro.algebra.library import nested_while_tc_pairs, transitive_closure
from repro.algebra.rewrites import MARK, gate, guard, not_guard, unnest_whiles
from repro.algebra.typing import classify
from repro.budget import Budget
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.workloads import random_binary_pairs


def ev(expr, **vars):
    return eval_expr(expr, dict(vars), Budget())


def rel(*labels):
    return SetVal([Atom(l) for l in labels])


class TestGatePrimitives:
    def test_guard(self):
        assert ev(guard(Var("e")), e=rel("x")) == SetVal([MARK])
        assert ev(guard(Var("e")), e=rel()) == SetVal([])

    def test_not_guard(self):
        assert ev(not_guard(guard(Var("e"))), e=rel()) == SetVal([MARK])
        assert ev(not_guard(guard(Var("e"))), e=rel("x")) == SetVal([])

    def test_gate_passes_when_open(self):
        assert ev(gate(Var("e"), guard(Var("g"))), e=rel("a", "b"), g=rel("x")) == rel(
            "a", "b"
        )

    def test_gate_blocks_when_closed(self):
        assert ev(gate(Var("e"), guard(Var("g"))), e=rel("a"), g=rel()) == rel()

    def test_gate_is_arity_agnostic(self):
        pairs = SetVal([Tup([Atom(1), Atom(2)])])
        assert ev(gate(Var("e"), guard(Var("g"))), e=pairs, g=rel("x")) == pairs

    def test_gate_of_empty_is_empty(self):
        assert ev(gate(Var("e"), guard(Var("g"))), e=rel(), g=rel("x")) == rel()


class TestUnnestWhiles:
    def test_flat_program_unchanged_semantically(self, binary_db):
        program = transitive_closure()
        flattened = unnest_whiles(program)
        assert run_program(program, binary_db) == run_program(flattened, binary_db)

    def test_nested_becomes_unnested(self, binary_db):
        program = nested_while_tc_pairs()
        assert classify(program, binary_db.schema).while_nesting == 2
        flattened = unnest_whiles(program)
        assert classify(flattened, binary_db.schema).while_nesting == 1

    def test_no_powerset_introduced(self, binary_db):
        flattened = unnest_whiles(nested_while_tc_pairs())
        assert not classify(flattened, binary_db.schema).uses_powerset

    def test_equivalence_on_nested_program(self):
        program = nested_while_tc_pairs()
        flattened = unnest_whiles(program)
        for seed in range(4):
            database = random_binary_pairs(3, 4, seed)
            assert run_program(program, database) == run_program(flattened, database)

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_random_graphs(self, seed):
        program = nested_while_tc_pairs()
        flattened = unnest_whiles(program)
        database = random_binary_pairs(4, 5, seed)
        assert run_program(program, database) == run_program(flattened, database)

    def test_triple_nesting(self):
        # Build a 3-deep nest by hand; all levels must collapse.
        inner = While("i2", "x", "y2", [Assign("y2", Diff(Var("y2"), Var("y2")))])
        middle = While(
            "i1",
            "x",
            "y1",
            [Assign("y2", Var("x")), inner, Assign("y1", Diff(Var("y1"), Var("y1")))],
        )
        program = Program(
            [
                Assign("x", Var("R")),
                Assign("y1", Var("R")),
                Assign("y0", Var("R")),
                While(
                    "out",
                    "x",
                    "y0",
                    [middle, Assign("y0", Diff(Var("y0"), Var("y0")))],
                ),
                Assign("ANS", Var("out")),
            ],
            input_names=["R"],
        )
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        assert classify(program, schema).while_nesting == 3
        flattened = unnest_whiles(program)
        assert classify(flattened, schema).while_nesting == 1
        assert run_program(program, database) == run_program(flattened, database)

    def test_zero_iteration_outer_loop(self):
        # Outer condition empty at entry: collapse must also skip.
        program = Program(
            [
                Assign("x", Var("R")),
                Assign("empty", Diff(Var("R"), Var("R"))),
                Assign("y2", Var("R")),
                While(
                    "out",
                    "x",
                    "empty",
                    [
                        While("z", "x", "y2", [
                            Assign("y2", Diff(Var("y2"), Var("y2")))
                        ]),
                    ],
                ),
                Assign("ANS", Var("out")),
            ],
            input_names=["R"],
        )
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1}})
        flattened = unnest_whiles(program)
        assert run_program(program, database) == run_program(flattened, database)

    def test_idempotent_on_flat(self, binary_db):
        program = transitive_closure()
        once = unnest_whiles(program)
        twice = unnest_whiles(once)
        assert run_program(once, binary_db) == run_program(twice, binary_db)

"""Unit tests for the stock algebra queries."""

import pytest

from repro.algebra.ast import Powerset, Program, Assign, Var
from repro.algebra.eval import run_program
from repro.algebra.library import (
    active_domain,
    counter_prefix,
    heterogeneous_union,
    natural_join,
    nested_while_tc_pairs,
    powerset_via_while,
    transitive_closure,
    transitive_closure_powerset,
    undefine_if_empty,
)
from repro.algebra.typing import typecheck
from repro.budget import Budget
from repro.errors import TypeCheckError, UNDEFINED
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.workloads import chain_graph, cycle_graph, random_binary_pairs


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None)


class TestJoinAndBasics:
    def test_natural_join(self):
        schema = Schema({"R": parse_type("[U, U]"), "S": parse_type("[U, U]")})
        database = Database(schema, {"R": {(1, 2), (8, 9)}, "S": {(2, 3), (2, 4)}})
        out = run_program(natural_join(), database)
        assert out == SetVal(
            [Tup([Atom(1), Atom(2), Atom(3)]), Tup([Atom(1), Atom(2), Atom(4)])]
        )

    def test_active_domain(self, binary_db):
        out = run_program(active_domain(), binary_db)
        assert out == SetVal([Atom(1), Atom(2), Atom(3)])

    def test_undefine_if_empty(self):
        schema = Schema({"R": parse_type("U")})
        empty = Database(schema, {"R": set()})
        full = Database(schema, {"R": {1}})
        assert run_program(undefine_if_empty(), empty) is UNDEFINED
        assert run_program(undefine_if_empty(), full) == SetVal([Atom(1)])


class TestTransitiveClosure:
    def test_chain(self):
        database = chain_graph(3)
        out = run_program(transitive_closure(), database)
        assert len(out) == 6  # all ordered pairs i < j over 4 nodes

    def test_cycle_saturates(self):
        database = cycle_graph(3)
        out = run_program(transitive_closure(), database)
        assert len(out) == 9

    def test_empty(self):
        schema = Schema({"R": parse_type("[U, U]")})
        database = Database(schema, {"R": set()})
        assert run_program(transitive_closure(), database) == SetVal([])

    def test_powerset_variant_agrees(self):
        for seed in range(3):
            database = random_binary_pairs(3, 3, seed)
            via_while = run_program(transitive_closure(), database)
            via_powerset = run_program(
                transitive_closure_powerset(), database, _unlimited()
            )
            assert via_while == via_powerset

    def test_powerset_variant_is_loop_free(self, binary_db):
        from repro.algebra.typing import classify

        info = classify(transitive_closure_powerset(), binary_db.schema)
        assert not info.uses_while and info.uses_powerset


class TestPowersetViaWhile:
    def test_matches_powerset_operator(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2, 3}})
        direct = run_program(
            Program([Assign("ANS", Powerset(Var("R")))], input_names=["R"]),
            database,
        )
        simulated = run_program(powerset_via_while(), database, _unlimited())
        assert simulated == direct
        assert len(simulated) == 8

    def test_empty_input(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": set()})
        out = run_program(powerset_via_while(), database)
        assert out == SetVal([SetVal([])])

    def test_no_powerset_operator_used(self):
        from repro.algebra.typing import classify

        schema = Schema({"R": parse_type("U")})
        info = classify(powerset_via_while(), schema)
        assert info.uses_while and not info.uses_powerset


class TestCounterPrefix:
    def test_mints_r_plus_one_indices(self):
        schema = Schema({"R": parse_type("U")})
        for size in range(4):
            database = Database(schema, {"R": set(range(size))})
            out = run_program(counter_prefix(), database, _unlimited())
            assert len(out) == size + 1

    def test_indices_are_atom_free(self):
        from repro.model.values import adom

        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2}})
        out = run_program(counter_prefix(), database, _unlimited())
        for index in out.items:
            assert adom(index) == frozenset()


class TestHeterogeneousUnion:
    def test_runs_in_relaxed_mode(self):
        schema = Schema({"R": parse_type("U"), "S": parse_type("[U, U]")})
        database = Database(schema, {"R": {1}, "S": {(2, 3)}})
        out = run_program(heterogeneous_union(), database)
        assert len(out) == 2

    def test_rejected_by_typed_checker(self):
        schema = Schema({"R": parse_type("U"), "S": parse_type("[U, U]")})
        with pytest.raises(TypeCheckError):
            typecheck(heterogeneous_union(), schema, typed_only=True)


class TestNestedWhile:
    def test_computes_symmetric_closure_pairs(self):
        database = chain_graph(2)
        out = run_program(nested_while_tc_pairs(), database)
        # TC ∪ TC⁻¹ of a 2-chain: 3 forward + 3 backward pairs.
        assert len(out) == 6

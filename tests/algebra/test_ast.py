"""Unit tests for the algebra AST and program validation."""

import pytest

from repro.algebra.ast import (
    Assign,
    Const,
    Diff,
    Eq,
    EqConst,
    Member,
    Nest,
    Program,
    Project,
    Select,
    Undefine,
    Union,
    Var,
    While,
)
from repro.errors import TypeCheckError
from repro.model.values import Atom, SetVal


class TestNodes:
    def test_var_name(self):
        with pytest.raises(TypeCheckError):
            Var("")

    def test_const_must_be_instance(self):
        Const(SetVal([Atom(1)]))
        Const({1, 2})  # coerced
        with pytest.raises(TypeCheckError):
            Const(Atom(1))  # an object, not an instance

    def test_project_cols(self):
        with pytest.raises(TypeCheckError):
            Project(Var("R"), [])
        with pytest.raises(TypeCheckError):
            Project(Var("R"), [0])

    def test_select_conditions(self):
        Select(Var("R"), Eq(1, 2))
        Select(Var("R"), [Eq(1, 2), EqConst(1, 5)])
        with pytest.raises(TypeCheckError):
            Select(Var("R"), ["bogus"])

    def test_member_tuple_lhs(self):
        Member((1, 2), 3)
        with pytest.raises(TypeCheckError):
            Member((1,), 3)  # tuple lhs needs >= 2 cols

    def test_nest_normalises_cols(self):
        assert Nest(Var("R"), [3, 1, 3]).cols == (1, 3)

    def test_operand_type_checked(self):
        with pytest.raises(TypeCheckError):
            Union(Var("R"), "not an expr")
        with pytest.raises(TypeCheckError):
            Undefine("nope")


class TestWhile:
    def test_target_not_assigned_in_body(self):
        with pytest.raises(TypeCheckError):
            While("z", "x", "y", [Assign("z", Var("x"))])

    def test_nested_target_conflict(self):
        with pytest.raises(TypeCheckError):
            While("z", "x", "y", [While("z", "x", "y", [])])


class TestProgramValidation:
    def test_use_before_assignment(self):
        with pytest.raises(TypeCheckError):
            Program([Assign("a", Var("missing"))])

    def test_inputs_are_preassigned(self):
        Program([Assign("ANS", Var("R"))], input_names=["R"])

    def test_inputs_not_reassignable(self):
        with pytest.raises(TypeCheckError):
            Program(
                [Assign("R", Const(set())), Assign("ANS", Var("R"))],
                input_names=["R"],
            )

    def test_answer_must_be_assigned(self):
        with pytest.raises(TypeCheckError):
            Program([Assign("a", Const(set()))])

    def test_while_vars_must_predate_loop(self):
        with pytest.raises(TypeCheckError):
            Program(
                [
                    Assign("x", Const(set())),
                    While("z", "x", "y", [Assign("y", Const(set()))]),
                    Assign("ANS", Var("z")),
                ]
            )

    def test_valid_while_program(self):
        program = Program(
            [
                Assign("x", Var("R")),
                Assign("y", Var("R")),
                While("z", "x", "y", [Assign("y", Diff(Var("y"), Var("y")))]),
                Assign("ANS", Var("z")),
            ],
            input_names=["R"],
        )
        assert program.ans_var == "ANS"

    def test_body_definitions_visible_after_loop(self):
        Program(
            [
                Assign("x", Var("R")),
                Assign("y", Var("R")),
                While("z", "x", "y", [Assign("w", Var("x")),
                                      Assign("y", Diff(Var("y"), Var("y")))]),
                Assign("ANS", Var("w")),
            ],
            input_names=["R"],
        )

    def test_repr_lists_statements(self):
        program = Program([Assign("ANS", Var("R"))], input_names=["R"])
        assert "ANS := R" in repr(program)

"""Unit tests for static typing and fragment classification."""

import pytest

from repro.algebra.ast import (
    Assign,
    Collapse,
    EncodeInput,
    Expand,
    Member,
    Nest,
    Powerset,
    Product,
    Program,
    Project,
    Select,
    Union,
    Unnest,
    Var,
    While,
)
from repro.algebra.typing import classify, typecheck
from repro.errors import TypeCheckError
from repro.model.schema import Schema
from repro.model.types import OBJ, SetType, TupleType, U, parse_type


def _schema(**preds):
    return Schema({name: parse_type(text) for name, text in preds.items()})


def _program(*statements, inputs=("R",)):
    return Program(list(statements), input_names=list(inputs))


class TestInference:
    def test_inputs_seed_environment(self):
        schema = _schema(R="[U, U]")
        env = typecheck(_program(Assign("ANS", Var("R"))), schema)
        assert env["ANS"] == parse_type("[U, U]")

    def test_product(self):
        schema = _schema(R="[U, U]")
        env = typecheck(
            _program(Assign("ANS", Product(Var("R"), Var("R")))), schema
        )
        assert env["ANS"] == parse_type("[U, U, U, U]")

    def test_project_single_column_is_bare(self):
        schema = _schema(R="[U, U]")
        env = typecheck(_program(Assign("ANS", Project(Var("R"), [1]))), schema)
        assert env["ANS"] == U

    def test_nest(self):
        schema = _schema(R="[U, U]")
        env = typecheck(_program(Assign("ANS", Nest(Var("R"), [2]))), schema)
        assert env["ANS"] == TupleType([U, SetType(U)])

    def test_unnest(self):
        schema = _schema(R="[U, {U}]")
        env = typecheck(_program(Assign("ANS", Unnest(Var("R"), 2))), schema)
        assert env["ANS"] == parse_type("[U, U]")

    def test_powerset_and_collapse(self):
        schema = _schema(R="U")
        env = typecheck(
            _program(
                Assign("p", Powerset(Var("R"))),
                Assign("c", Collapse(Var("R"))),
                Assign("ANS", Expand(Var("c"))),
            ),
            schema,
        )
        assert env["p"] == SetType(U)
        assert env["c"] == SetType(U)
        assert env["ANS"] == U

    def test_heterogeneous_union_widens_to_obj(self):
        schema = _schema(R="U", S="[U, U]")
        env = typecheck(
            _program(Assign("ANS", Union(Var("R"), Var("S"))), inputs=("R", "S")),
            schema,
        )
        assert env["ANS"] == OBJ


class TestTypedOnlyDiscipline:
    def test_homogeneous_passes(self):
        schema = _schema(R="[U, U]")
        typecheck(_program(Assign("ANS", Union(Var("R"), Var("R")))), schema,
                  typed_only=True)

    def test_heterogeneous_union_rejected(self):
        schema = _schema(R="U", S="[U, U]")
        with pytest.raises(TypeCheckError):
            typecheck(
                _program(Assign("ANS", Union(Var("R"), Var("S"))),
                         inputs=("R", "S")),
                schema,
                typed_only=True,
            )

    def test_out_of_range_coordinate_rejected(self):
        schema = _schema(R="[U, U]")
        with pytest.raises(TypeCheckError):
            typecheck(
                _program(Assign("ANS", Project(Var("R"), [5]))),
                schema,
                typed_only=True,
            )

    def test_membership_on_non_set_rejected(self):
        schema = _schema(R="[U, U]")
        with pytest.raises(TypeCheckError):
            typecheck(
                _program(Assign("ANS", Select(Var("R"), Member(1, 2)))),
                schema,
                typed_only=True,
            )

    def test_encode_input_rejected(self):
        schema = _schema(R="[U, U]")
        with pytest.raises(TypeCheckError):
            typecheck(
                _program(Assign("ANS", EncodeInput(["R"]))),
                schema,
                typed_only=True,
            )

    def test_obj_input_rejected(self):
        schema = _schema(R="{Obj}")
        with pytest.raises(TypeCheckError):
            typecheck(_program(Assign("ANS", Var("R"))), schema, typed_only=True)

    def test_relaxed_mode_accepts_all_of_the_above(self):
        schema = _schema(R="[U, U]", S="U")
        typecheck(
            _program(
                Assign("a", Union(Var("R"), Var("S"))),
                Assign("b", Project(Var("a"), [5])),
                Assign("ANS", EncodeInput(["R"])),
                inputs=("R", "S"),
            ),
            schema,
        )

    def test_while_type_stability_enforced(self):
        schema = _schema(R="U")
        program = _program(
            Assign("x", Var("R")),
            Assign("y", Var("R")),
            While("z", "x", "y", [
                Assign("y", Collapse(Var("y"))),  # type changes each pass!
            ]),
            Assign("ANS", Var("z")),
        )
        with pytest.raises(TypeCheckError):
            typecheck(program, schema, typed_only=True)
        # Relaxed inference converges (widening to Obj).
        env = typecheck(program, schema, typed_only=False)
        assert env["z"] == OBJ or env["z"] == U  # widened somewhere stable


class TestClassification:
    def test_flat_typed(self, binary_db):
        program = _program(Assign("ANS", Project(Var("R"), [1])))
        info = classify(program, binary_db.schema)
        assert info.fragment == "tsALG"
        assert not info.uses_while

    def test_while_and_powerset_flags(self, binary_db):
        from repro.algebra.library import (
            nested_while_tc_pairs,
            transitive_closure,
            transitive_closure_powerset,
        )

        tc = classify(transitive_closure(), binary_db.schema)
        assert tc.uses_while and not tc.uses_powerset
        assert tc.while_nesting == 1
        assert tc.fragment.endswith("unnested-while−powerset")

        tcp = classify(transitive_closure_powerset(), binary_db.schema)
        assert tcp.uses_powerset and not tcp.uses_while

        nested = classify(nested_while_tc_pairs(), binary_db.schema)
        assert nested.while_nesting == 2
        assert "+while" in nested.fragment

    def test_encode_input_flag(self, binary_db):
        program = _program(Assign("ANS", EncodeInput(["R"])))
        assert classify(program, binary_db.schema).uses_encode_input

"""Kernel-cache counters in the service STATS snapshot.

The fixpoint backends report their per-run compiled-kernel cache
traffic on the :class:`~repro.query.planner.ExecutionReport`; the
service folds those into service-wide counters so warm-kernel wins are
observable from ``stats()`` like every other instrument.
"""

from repro.serve.service import QueryService
from repro.workloads import serve_databases

RULES_TC = (
    "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T"
)
RULES_JOIN = "rules { Q(x, y) :- R(x, y), S(x). } answer Q"


def _kernel_counters(service) -> dict:
    metrics = service.stats(trace_limit=0)["metrics"]
    return {
        name: value
        for name, value in metrics.items()
        if name.startswith("kernel_cache_")
    }


class TestKernelCacheCounters:
    def test_registered_from_the_start(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            counters = _kernel_counters(service)
            assert counters == {
                "kernel_cache_hits": 0,
                "kernel_cache_misses": 0,
                "kernel_cache_invalidations": 0,
            }
        finally:
            service.close()

    def test_rules_query_reports_cache_traffic(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            outcome = service.query("main", RULES_TC)
            assert outcome.status == "ok"
            counters = _kernel_counters(service)
            # Every kernel is compiled once (misses) and the recursive
            # rule re-enters the cache on later rounds (hits).
            assert counters["kernel_cache_misses"] > 0
            assert counters["kernel_cache_hits"] > 0

            before = counters
            outcome = service.query("main", RULES_JOIN)
            assert outcome.status == "ok"
            after = _kernel_counters(service)
            assert after["kernel_cache_misses"] > before["kernel_cache_misses"]
        finally:
            service.close()

    def test_memo_hit_adds_no_kernel_traffic(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            assert service.query("main", RULES_TC).status == "ok"
            before = _kernel_counters(service)
            # Same generic query again: served from the memo cache, no
            # fixpoint runs, so kernel counters must not move.
            assert service.query("main", RULES_TC).status == "ok"
            assert _kernel_counters(service) == before
        finally:
            service.close()

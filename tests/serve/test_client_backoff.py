"""ServeClient retry/backoff behaviour, without real sockets or sleeps.

Complements the live-socket retry tests in ``test_server_client.py``:
here the transport and the clock are both fakes, so the assertions are
about the *schedule* — determinism under a seed, the total-sleep cap,
and that non-retryable errors never sleep at all.
"""

import pytest

from repro.serve.client import RetriesExhausted, ServeClient, ServeClientError

REJECTION = {
    "op": "QUERY",
    "ok": False,
    "error": {"type": "rejected", "message": "full", "retryable": True},
}
FATAL = {
    "op": "QUERY",
    "ok": False,
    "error": {"type": "unknown-database", "message": "nope", "retryable": False},
}


def instrumented(monkeypatch, client, responses):
    """Replace the transport with canned responses and record sleeps."""
    sleeps: list = []
    replies = iter(responses)
    monkeypatch.setattr(
        "repro.serve.client.time.sleep", lambda seconds: sleeps.append(seconds)
    )
    monkeypatch.setattr(client, "_roundtrip", lambda message: next(replies))
    return sleeps


class TestDeterminism:
    def test_same_seed_same_schedule(self, monkeypatch):
        schedules = []
        for _ in range(2):
            client = ServeClient(seed=42, retries=4, backoff=0.1, jitter=0.5)
            sleeps = instrumented(monkeypatch, client, [REJECTION] * 5)
            with pytest.raises(RetriesExhausted):
                client.call({"op": "QUERY"})
            schedules.append(tuple(sleeps))
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == 4  # one sleep before each retry

    def test_different_seeds_differ(self, monkeypatch):
        schedules = []
        for seed in (1, 2):
            client = ServeClient(seed=seed, retries=4, backoff=0.1, jitter=0.5)
            sleeps = instrumented(monkeypatch, client, [REJECTION] * 5)
            with pytest.raises(RetriesExhausted):
                client.call({"op": "QUERY"})
            schedules.append(tuple(sleeps))
        assert schedules[0] != schedules[1]


class TestSleepBounds:
    def test_total_sleep_is_capped(self, monkeypatch):
        retries, cap, jitter = 6, 0.25, 0.5
        client = ServeClient(
            seed=3, retries=retries, backoff=0.05, backoff_cap=cap, jitter=jitter
        )
        sleeps = instrumented(monkeypatch, client, [REJECTION] * (retries + 1))
        with pytest.raises(RetriesExhausted):
            client.call({"op": "QUERY"})
        # Each sleep ≤ cap·(1+jitter); the whole retry run is bounded.
        assert all(s <= cap * (1 + jitter) for s in sleeps)
        assert sum(sleeps) <= retries * cap * (1 + jitter)
        assert all(s >= 0.0 for s in sleeps)

    def test_exponential_until_the_cap(self, monkeypatch):
        client = ServeClient(
            seed=0, retries=5, backoff=0.1, backoff_cap=0.4, jitter=0.0
        )
        sleeps = instrumented(monkeypatch, client, [REJECTION] * 6)
        with pytest.raises(RetriesExhausted):
            client.call({"op": "QUERY"})
        assert sleeps == [0.1, 0.2, 0.4, 0.4, 0.4]


class TestStopping:
    def test_non_retryable_error_never_sleeps(self, monkeypatch):
        client = ServeClient(seed=0, retries=5)
        sleeps = instrumented(monkeypatch, client, [FATAL] * 6)
        with pytest.raises(ServeClientError) as exc_info:
            client.call({"op": "QUERY"})
        assert not isinstance(exc_info.value, RetriesExhausted)
        assert exc_info.value.type == "unknown-database"
        assert sleeps == []  # gave up immediately

    def test_non_retryable_after_retryables_stops(self, monkeypatch):
        client = ServeClient(seed=0, retries=5, backoff=0.01)
        sleeps = instrumented(
            monkeypatch, client, [REJECTION, REJECTION, FATAL, REJECTION]
        )
        with pytest.raises(ServeClientError) as exc_info:
            client.call({"op": "QUERY"})
        assert exc_info.value.type == "unknown-database"
        assert len(sleeps) == 2  # only the retryable attempts slept

    def test_retry_false_is_single_shot(self, monkeypatch):
        client = ServeClient(seed=0, retries=5)
        sleeps = instrumented(monkeypatch, client, [REJECTION] * 6)
        with pytest.raises(ServeClientError):
            client.call({"op": "QUERY"}, retry=False)
        assert sleeps == []

    def test_success_after_backoff_returns_response(self, monkeypatch):
        ok = {"op": "QUERY", "ok": True, "result": "{}"}
        client = ServeClient(seed=0, retries=5, backoff=0.01)
        sleeps = instrumented(monkeypatch, client, [REJECTION, REJECTION, ok])
        assert client.call({"op": "QUERY"}) == ok
        assert len(sleeps) == 2

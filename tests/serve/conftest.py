"""Serve-test fixtures: keep the process-wide interner state scoped.

``QueryService(intern=True)`` installs a process-wide interner; these
tests must not leak that (or any counters it accumulated) into the
rest of the suite, so every test in this package restores whatever
interner was installed before it ran.
"""

import pytest

from repro.model import values as _values


@pytest.fixture(autouse=True)
def _restore_interner():
    previous = _values.get_interner()
    yield
    _values.set_interner(previous)

"""Metrics instruments: correctness alone and under contention."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_no_lost_increments_under_threads(self):
        counter = Counter()
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(5_000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9

    def test_balanced_under_threads(self):
        gauge = Gauge()

        def bounce():
            for _ in range(5_000):
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=bounce) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 0


class TestHistogram:
    def test_counts_sum_min_max(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.05
        assert snap["max"] == 50.0
        assert snap["sum"] == pytest.approx(55.55)
        # Cumulative buckets: each bound counts everything at or below.
        assert snap["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3}

    def test_quantile_bucket_resolution(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05,) * 9 + (5.0,):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 10.0
        assert Histogram().quantile(0.5) is None

    def test_no_lost_observations_under_threads(self):
        histogram = Histogram()

        def observe():
            for _ in range(2_000):
                histogram.observe(0.01)

        threads = [threading.Thread(target=observe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 16_000
        assert histogram.snapshot()["buckets"]["0.01"] == 16_000


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        registry.histogram("c").observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # everything is JSON-serialisable

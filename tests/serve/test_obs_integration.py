"""The observability redesign, end to end through the serving layer.

One registry snapshot feeds STATS, the per-database sections, EXPLAIN's
counter block, and the Prometheus dump; the drain invariant holds after
both close() paths; slow queries are captured with their physical
trees; spans cover the request lifecycle.
"""

import time

import pytest

from repro.obs import tracing
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, nest
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.serve.service import QueryService
from repro.workloads import serve_databases

from tests.serve.test_service import _blocked_service


class TestUnifiedStats:
    def test_canonical_and_alias_keys_agree(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            metrics = service.stats()["metrics"]
            for canonical, alias in (
                ("serve.queries.accepted", "queries_accepted"),
                ("serve.queries.completed", "queries_completed"),
                ("serve.queue.wait_seconds", "queue_wait_seconds"),
                ("serve.in_flight", "in_flight"),
            ):
                assert metrics[canonical] == metrics[alias]
        finally:
            service.close()

    def test_database_section_is_a_nest_view_of_the_snapshot(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            stats = service.stats()
            derived = nest(stats["metrics"], "db.main")
            section = stats["databases"]["main"]
            assert section["memo"] == derived["memo"]
            assert section["plans"] == derived["plans"]
            assert section["views"] == derived["views"]
        finally:
            service.close()

    def test_interner_section_matches_collector_keys(self):
        service = QueryService(serve_databases(), workers=1)
        try:
            service.query("main", "{ x | S(x) }")
            stats = service.stats()
            assert stats["interner"] == nest(stats["metrics"], "engine.intern")
            assert stats["interner"]["hits"] == stats["metrics"]["engine.intern.hits"]
        finally:
            service.close()

    def test_engine_op_totals_aggregate(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            metrics = service.stats()["metrics"]
            assert metrics["engine.ops.rows_out"] > 0
        finally:
            service.close()

    def test_injected_registry_is_used(self):
        registry = MetricsRegistry()
        service = QueryService(
            serve_databases(), workers=1, intern=False, registry=registry
        )
        try:
            assert service.metrics is registry
            service.query("main", "{ x | S(x) }")
            assert registry.counter("serve.queries.completed").value == 1
        finally:
            service.close()


class TestDrainInvariant:
    def test_holds_after_graceful_close(self):
        service = QueryService(serve_databases(), workers=2, intern=False)
        service.query("main", "{ x | S(x) }")
        service.query("main", "nonsense ((")
        service.close()  # raises AssertionError on a dropped outcome
        metrics = service.metrics.snapshot()
        assert metrics["serve.queries.accepted"] == 2
        assert metrics["serve.queries.closed"] == 0

    def test_holds_after_close_without_drain(self):
        service, blocker = _blocked_service(workers=1, max_queue_depth=8)
        occupier = service.submit("block", "x")
        time.sleep(0.05)
        queued = [service.submit("main", "{ x | S(x) }") for _ in range(3)]
        blocker.release.set()
        service.close(drain=False)
        assert occupier.wait(timeout=5) is not None
        for pending in queued:
            assert pending.wait(timeout=5) is not None
        metrics = service.metrics.snapshot()
        settled = sum(
            metrics[f"serve.queries.{name}"]
            for name in ("completed", "timed_out", "failed", "closed")
        )
        assert metrics["serve.queries.accepted"] == settled
        assert metrics["serve.queries.closed"] == metrics["queries_closed"]

    def test_verify_drained_reports_a_dropped_outcome(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            service.metrics.counter("serve.queries.accepted").inc()  # orphan
            with pytest.raises(AssertionError, match="drain invariant"):
                service.verify_drained()
        finally:
            service.metrics.counter("serve.queries.completed").inc()
            service.close()


class TestSlowQueryLog:
    def test_threshold_zero_captures_every_query(self):
        service = QueryService(
            serve_databases(), workers=1, intern=False, slow_query_ms=0.0
        )
        try:
            service.query("main", "{ x | S(x) }")
            stats = service.stats()
            (entry,) = stats["slow_queries"]
            assert entry["db"] == "main"
            assert entry["text"] == "{ x | S(x) }"
            assert entry["outcome"] == "ok"
            assert entry["physical"] and "Scan(" in entry["physical"]
            assert stats["metrics"]["serve.queries.slow"] == 1
            assert stats["metrics"]["obs.slow_queries.recorded"] == 1
        finally:
            service.close()

    def test_disabled_by_default(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            stats = service.stats()
            assert stats["slow_queries"] == []
            assert stats["metrics"]["serve.queries.slow"] == 0
        finally:
            service.close()


class TestRequestSpans:
    def test_request_span_tree(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            with tracing() as recorder:
                service.query("main", "{ x | S(x) }")
            spans = recorder.tail()
            by_name = {}
            for entry in spans:
                by_name.setdefault(entry["name"], entry)
            request = by_name["serve.request"]
            assert request["parent_id"] is None
            assert request["attrs"]["db"] == "main"
            assert request["attrs"]["backend"]
            run = by_name["session.run"]
            assert run["parent_id"] == request["span_id"]
        finally:
            service.close()

    def test_commit_span_on_updates(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            with tracing() as recorder:
                outcome = service.update("main", asserts={"S": ["z"]})
            assert outcome.status == "ok"
            names = {entry["name"] for entry in recorder.tail()}
            assert "serve.commit" in names
        finally:
            service.close()

    def test_no_recorder_means_no_spans_recorded(self):
        from repro.obs import get_recorder

        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            assert get_recorder() is None
            service.query("main", "{ x | S(x) }")
            assert get_recorder() is None
        finally:
            service.close()


class TestMetricsWireOp:
    def test_metrics_text_over_the_wire(self):
        service = QueryService(serve_databases(), workers=2, intern=False)
        server = ServeServer(service, port=0)
        server.start()
        try:
            host, port = server.address
            with ServeClient(host, port, seed=0) as client:
                client.query("main", "{ x | S(x) }")
                text = client.metrics_text()
            assert "# TYPE repro_serve_queries_accepted counter" in text
            assert "repro_serve_queries_completed 1" in text
            assert render_prometheus(service.metrics).splitlines()[0] in text
        finally:
            server.stop()

    def test_explain_over_wire_renders_unified_counter_block(self):
        service = QueryService(serve_databases(), workers=2, intern=False)
        server = ServeServer(service, port=0)
        server.start()
        try:
            host, port = server.address
            with ServeClient(host, port, seed=0) as client:
                text = client.explain("main", "{ x | S(x) }", run=True)
            assert "memo cache: hits=" in text
            assert "plan cache: hits=" in text
        finally:
            server.stop()

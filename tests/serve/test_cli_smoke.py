"""End-to-end smoke of ``python -m repro.serve`` (the CI satellite).

Boots the real CLI in a subprocess with the slow-query log armed,
drives PING / QUERY / STATS / METRICS over the wire, then SIGTERMs it
and checks the shutdown dump: the STATS JSON snapshot followed by the
Prometheus metrics text.
"""

import json
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.serve.client import ServeClient

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

REQUIRED_FAMILIES = (
    "repro_serve_queries_accepted",
    "repro_serve_queries_completed",
    "repro_serve_queries_slow",
    "repro_serve_queue_wait_seconds",
    "repro_serve_execution_seconds",
    "repro_engine_ops_rows_out",
)


@pytest.fixture()
def cli_server():
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--slow-query-ms",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("repro.serve listening on "), banner
        host, _, port = banner.rpartition(" ")[2].rpartition(":")
        yield proc, host, int(port)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


class TestServeCliSmoke:
    def test_full_lifecycle(self, cli_server):
        proc, host, port = cli_server
        with ServeClient(host, port, seed=0) as client:
            assert client.ping()
            result = client.query("main", "{ x | S(x) }")
            assert result["op"] == "QUERY"

            stats = client.stats()
            assert stats["metrics"]["serve.queries.completed"] == 1
            assert stats["metrics"]["queries_completed"] == 1  # legacy alias
            # --slow-query-ms 0 records every finished query.
            assert stats["metrics"]["serve.queries.slow"] == 1
            (slow,) = stats["slow_queries"]
            assert slow["text"] == "{ x | S(x) }"
            assert "Scan(" in slow["physical"]

            scrape = client.metrics_text()
            for family in REQUIRED_FAMILIES:
                assert family in scrape, family

        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "shutting down..." in stdout

        # Shutdown dump: a STATS JSON object, then the Prometheus text.
        json_start = stdout.index("{")
        decoder = json.JSONDecoder()
        snapshot, end = decoder.raw_decode(stdout[json_start:])
        assert snapshot["metrics"]["serve.queries.accepted"] >= 1
        assert snapshot["traces"] == []  # trace_limit=0 in the dump
        prom = stdout[json_start + end :]
        for family in REQUIRED_FAMILIES:
            assert family in prom, family

"""QueryService: concurrency correctness, admission control, deadlines.

The acceptance harness for the serving layer: a 16-thread closed-loop
client run over the full 31-query differential bank must produce
byte-identical results to serial execution, with shared-cache hits
across threads, accurate metrics, and typed rejection/timeout errors —
no deadlock, no crash.
"""

import threading
import time

import pytest

from repro.budget import Budget
from repro.errors import UNDEFINED, is_undefined
from repro.query.planner import ExecutionReport
from repro.query.session import Session
from repro.serve.service import (
    AdmissionRejected,
    QueryFailed,
    QueryService,
    RequestTimeout,
    ServeError,
    ServiceClosed,
    UnknownDatabase,
)
from repro.workloads import SERVE_QUERY_BANK, request_stream, serve_databases

from tests.query.test_differential import BANK, DATABASES


class _BlockingSession:
    """A session stand-in whose run() blocks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def run(self, text, backend=None, budget=None, database=None):
        self.calls += 1
        if not self.release.wait(timeout=30):
            raise RuntimeError("blocking session never released")
        return UNDEFINED, ExecutionReport("fake", UNDEFINED, spent={}, cached=False)


class _BurningSession:
    """A session stand-in that charges the budget until it is stopped."""

    def run(self, text, backend=None, budget=None, database=None):
        while True:
            budget.charge("steps")


def _blocked_service(workers=1, max_queue_depth=4, **kwargs):
    service = QueryService(
        serve_databases(),
        workers=workers,
        max_queue_depth=max_queue_depth,
        intern=False,
        **kwargs,
    )
    blocker = _BlockingSession()
    service._sessions["block"] = blocker
    return service, blocker


class TestBasics:
    def test_query_matches_direct_session(self):
        service = QueryService(serve_databases(), workers=2, intern=False)
        try:
            for db_key, text in SERVE_QUERY_BANK:
                outcome = service.query(db_key, text)
                assert outcome.status == "ok"
                direct, _ = Session(serve_databases()[db_key]).run(text)
                assert repr(outcome.result) == repr(direct)
        finally:
            service.close()

    def test_unknown_database_is_typed_and_immediate(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            with pytest.raises(UnknownDatabase):
                service.submit("nope", "{ 1 }")
        finally:
            service.close()

    def test_evaluator_failure_surfaces_as_query_failed(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            outcome = service.query("main", "{ x | Zzz(x) }")
            assert outcome.status == "error"
            with pytest.raises(QueryFailed):
                outcome.raise_for_status()
        finally:
            service.close()

    def test_load_and_replace(self):
        service = QueryService(workers=1, intern=False)
        try:
            database = serve_databases()["atoms"]
            service.load("d", database)
            assert service.databases() == ("d",)
            with pytest.raises(ServeError):
                service.load("d", database)
            service.load("d", database, replace=True)
            outcome = service.query("d", "{ x | R(x) }")
            assert outcome.status == "ok"
        finally:
            service.close()

    def test_budget_exhaustion_is_undefined_not_error(self):
        # ? is the bounded semantics' answer, not a service failure:
        # a starved real query comes back ok/UNDEFINED ...
        service = QueryService(
            serve_databases(), workers=1, budget=Budget(steps=2),
            default_timeout=None, intern=False,
        )
        try:
            outcome = service.query(
                "main", "{ [x, z] | some y / U : R([x, y]) and R([y, z]) }"
            )
            assert outcome.status == "ok"
            assert is_undefined(outcome.result)
            assert service.metrics.counter("queries_failed").value == 0
        finally:
            service.close()

    def test_budget_exceeded_escaping_an_evaluator_is_still_ok(self):
        # ... and a BudgetExceeded that escapes an evaluator (the
        # calculus backend lets it propagate) is absorbed by the
        # service as ok/UNDEFINED with the resource recorded.
        from repro.errors import BudgetExceeded

        service = QueryService(workers=1, default_timeout=None, intern=False)

        class _Starved:
            def run(self, text, backend=None, budget=None, database=None):
                raise BudgetExceeded("steps", 5)

        service._sessions["starved"] = _Starved()
        try:
            outcome = service.query("starved", "x")
            assert outcome.status == "ok"
            assert is_undefined(outcome.result)
            assert outcome.trace.cause == "budget:steps"
            assert service.metrics.counter("queries_failed").value == 0
        finally:
            service.close()


class TestAdmissionControl:
    def test_over_capacity_burst_rejected_retryable(self):
        service, blocker = _blocked_service(workers=2, max_queue_depth=3)
        try:
            # Occupy both workers, then fill the queue to its cap.
            occupiers = [service.submit("block", "x") for _ in range(2)]
            time.sleep(0.05)  # let the workers dequeue the occupiers
            queued = [service.submit("block", "x") for _ in range(3)]
            with pytest.raises(AdmissionRejected) as exc_info:
                service.submit("block", "x")
            assert exc_info.value.retryable
            assert exc_info.value.code == "rejected"
            assert service.metrics.counter("queries_rejected").value == 1
            # Release: everything admitted still completes — no deadlock.
            blocker.release.set()
            for pending in occupiers + queued:
                assert pending.wait(timeout=30) is not None
        finally:
            blocker.release.set()
            service.close()

    def test_priority_classes_fifo_within_class(self):
        service, blocker = _blocked_service(workers=1, max_queue_depth=16)
        try:
            occupier = service.submit("block", "x")
            time.sleep(0.05)
            # Enqueue batch first, then interactive: interactive starts first.
            batch = [
                service.submit("main", "{ x | S(x) }", priority=1)
                for _ in range(2)
            ]
            interactive = [
                service.submit("main", "{ x | S(x) }", priority=0)
                for _ in range(2)
            ]
            blocker.release.set()
            outcomes_batch = [p.wait(timeout=30) for p in batch]
            outcomes_interactive = [p.wait(timeout=30) for p in interactive]
            occupier.wait(timeout=30)
            latest_interactive = max(
                o.trace.started_at for o in outcomes_interactive
            )
            earliest_batch = min(o.trace.started_at for o in outcomes_batch)
            assert latest_interactive <= earliest_batch
            # FIFO within each class: request ids start in order.
            for outcomes in (outcomes_interactive, outcomes_batch):
                starts = [o.trace.started_at for o in outcomes]
                ids = [o.trace.request_id for o in outcomes]
                assert starts == sorted(starts)
                assert ids == sorted(ids)
        finally:
            blocker.release.set()
            service.close()

    def test_close_rejects_new_and_completes_queued(self):
        service, blocker = _blocked_service(workers=1, max_queue_depth=8)
        occupier = service.submit("block", "x")
        time.sleep(0.05)
        queued = service.submit("main", "{ x | S(x) }")
        closer = threading.Thread(target=service.close)
        closer.start()
        time.sleep(0.05)
        with pytest.raises(ServiceClosed):
            service.submit("main", "{ 1 }")
        blocker.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert occupier.wait(timeout=5).status == "ok"
        assert queued.wait(timeout=5).status == "ok"

    def test_close_without_drain_marks_queued_closed(self):
        service, blocker = _blocked_service(workers=1, max_queue_depth=8)
        occupier = service.submit("block", "x")
        time.sleep(0.05)
        queued = service.submit("main", "{ x | S(x) }")
        blocker.release.set()
        service.close(drain=False)
        assert occupier.wait(timeout=5) is not None
        outcome = queued.wait(timeout=5)
        if outcome.status == "closed":
            with pytest.raises(ServiceClosed):
                outcome.raise_for_status()


class TestDeadlines:
    def test_queue_expired_request_times_out_without_running(self):
        service, blocker = _blocked_service(workers=1)
        try:
            occupier = service.submit("block", "x")
            time.sleep(0.05)
            doomed = service.submit("main", "{ x | S(x) }", timeout=0.01)
            time.sleep(0.1)
            blocker.release.set()
            outcome = doomed.wait(timeout=30)
            assert outcome.status == "timeout"
            assert outcome.trace.cause == "queue"
            with pytest.raises(RequestTimeout):
                outcome.raise_for_status()
            occupier.wait(timeout=30)
            assert service.metrics.counter("queries_timed_out").value == 1
        finally:
            blocker.release.set()
            service.close()

    def test_execution_deadline_stops_a_burning_query(self):
        service = QueryService(
            serve_databases(),
            workers=1,
            budget=Budget.unlimited(),
            intern=False,
        )
        service._sessions["burn"] = _BurningSession()
        try:
            started = time.monotonic()
            outcome = service.query("burn", "x", timeout=0.1)
            elapsed = time.monotonic() - started
            assert outcome.status == "timeout"
            assert outcome.trace.cause == "execution"
            assert elapsed < 10
            assert is_undefined(outcome.result)
        finally:
            service.close()

    def test_deadline_budget_reaches_nested_evaluators(self):
        # The budget the service hands a request must propagate its
        # deadline through child() splits (Session.run makes one).
        service = QueryService(
            serve_databases(), workers=1, budget=Budget.unlimited(), intern=False
        )

        class _ChildBurner:
            def run(self, text, backend=None, budget=None, database=None):
                child = budget.child()
                while True:
                    child.charge("steps")

        service._sessions["nested"] = _ChildBurner()
        try:
            outcome = service.query("nested", "x", timeout=0.1)
            assert outcome.status == "timeout"
        finally:
            service.close()


class TestClosedLoopConcurrency:
    THREADS = 16

    def _serial_expected(self):
        expected = {}
        for db_key, text in BANK:
            result, _ = Session(DATABASES[db_key]).run(text)
            expected[(db_key, text)] = repr(result)
        return expected

    def test_16_threads_byte_identical_to_serial(self):
        expected = self._serial_expected()
        service = QueryService(
            DATABASES,
            workers=8,
            max_queue_depth=len(BANK) * self.THREADS + 8,
            default_timeout=None,
        )
        failures: list = []
        lock = threading.Lock()

        def closed_loop(thread_index: int):
            # Each thread walks the whole bank in a seeded order: a
            # closed loop (next request only after the previous reply).
            import random

            order = list(BANK)
            random.Random(thread_index).shuffle(order)
            for db_key, text in order:
                outcome = service.query(db_key, text)
                got = repr(outcome.result) if outcome.status == "ok" else outcome.status
                if got != expected[(db_key, text)]:
                    with lock:
                        failures.append((db_key, text, got))

        try:
            threads = [
                threading.Thread(target=closed_loop, args=(index,))
                for index in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            assert not any(thread.is_alive() for thread in threads), "deadlock"
            assert not failures, failures[:5]

            total = self.THREADS * len(BANK)
            metrics = service.metrics
            assert metrics.counter("queries_accepted").value == total
            assert metrics.counter("queries_started").value == total
            assert metrics.counter("queries_completed").value == total
            assert metrics.counter("queries_timed_out").value == 0
            assert metrics.counter("queries_failed").value == 0
            assert metrics.counter("queries_rejected").value == 0
            assert metrics.histogram("execution_seconds").count == total

            # The shared caches did real cross-thread work.
            stats = service.stats()
            memo_hits = sum(
                entry["memo"]["hits"] for entry in stats["databases"].values()
            )
            plan_hits = sum(
                entry["plans"]["hits"] for entry in stats["databases"].values()
            )
            assert memo_hits > 0
            assert plan_hits > 0
            assert stats["interner"]["hits"] > 0
        finally:
            service.close()

    def test_request_stream_mix_accounting(self):
        stream = request_stream(120, seed=3)
        assert stream == request_stream(120, seed=3)  # deterministic
        service = QueryService(
            serve_databases(),
            workers=4,
            max_queue_depth=256,
            default_timeout=None,
            intern=False,
        )
        try:
            outcomes: list = []
            lock = threading.Lock()

            def drive(chunk):
                for request in chunk:
                    outcome = service.query(
                        request.db, request.text, priority=request.priority
                    )
                    with lock:
                        outcomes.append(outcome)

            chunks = [stream[index::8] for index in range(8)]
            threads = [
                threading.Thread(target=drive, args=(chunk,)) for chunk in chunks
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            assert len(outcomes) == len(stream)
            assert all(outcome.status == "ok" for outcome in outcomes)
            started = service.metrics.counter("queries_started").value
            completed = service.metrics.counter("queries_completed").value
            timed_out = service.metrics.counter("queries_timed_out").value
            failed = service.metrics.counter("queries_failed").value
            assert started == len(stream)
            assert started == completed + timed_out + failed
        finally:
            service.close()


class TestStats:
    def test_stats_shape(self):
        service = QueryService(serve_databases(), workers=1, intern=False)
        try:
            service.query("main", "{ x | S(x) }")
            service.query("main", "{ x | S(x) }")
            stats = service.stats()
            assert stats["service"]["accepting"]
            assert stats["service"]["workers"] == 1
            assert stats["metrics"]["queries_completed"] == 2
            assert stats["databases"]["main"]["memo"]["hits"] >= 1
            assert stats["databases"]["main"]["plans"]["hits"] >= 1
            traces = stats["traces"]
            assert len(traces) == 2
            assert traces[-1]["cached"] is True
            assert traces[0]["physical"] and "Scan(" in traces[0]["physical"]
            import json

            json.dumps(stats)
        finally:
            service.close()

"""Wire protocol: framing, typed errors, type-directed JSON decoding."""

import json

import pytest

from repro.errors import EvaluationError
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.serve.protocol import (
    OPS,
    ProtocolError,
    database_from_spec,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    request_op,
    value_from_json,
)
from repro.serve.service import AdmissionRejected, RequestTimeout


class TestFraming:
    def test_roundtrip(self):
        message = {"op": "QUERY", "db": "main", "query": "{ 1 }"}
        wire = encode_message(message)
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1
        assert decode_message(wire) == message

    def test_keys_are_sorted_for_determinism(self):
        assert encode_message({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}\n'

    @pytest.mark.parametrize(
        "line",
        [b"", b"   ", b"not json", b"[1, 2]", b'"just a string"', b"\xff\xfe"],
    )
    def test_malformed_lines_are_typed_errors(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_ops_and_case_insensitivity(self):
        for op in OPS:
            assert request_op({"op": op.lower()}) == op
        with pytest.raises(ProtocolError):
            request_op({"op": "DELETE"})
        with pytest.raises(ProtocolError):
            request_op({})


class TestErrorResponses:
    def test_serve_errors_keep_code_and_retryable(self):
        response = error_response("QUERY", AdmissionRejected(4))
        assert not response["ok"]
        assert response["error"]["type"] == "rejected"
        assert response["error"]["retryable"] is True

        response = error_response("QUERY", RequestTimeout(1.5, "queue"))
        assert response["error"]["type"] == "timeout"
        assert response["error"]["retryable"] is False

    def test_repro_errors_map_to_error(self):
        response = error_response("QUERY", EvaluationError("boom"))
        assert response["error"]["type"] == "error"
        assert response["error"]["retryable"] is False

    def test_everything_else_is_internal(self):
        response = error_response("QUERY", RuntimeError("boom"))
        assert response["error"]["type"] == "internal"

    def test_responses_are_json_lines(self):
        ok = ok_response("PING", version=1)
        assert ok["ok"] is True
        json.dumps(ok)
        json.dumps(error_response("PING", RuntimeError("x")))


class TestValueFromJson:
    def test_array_is_tuple_under_tuple_type(self):
        value = value_from_json(["a", "b"], parse_type("[U, U]"))
        assert value == Tup([Atom("a"), Atom("b")])

    def test_array_is_set_under_set_type(self):
        value = value_from_json(["b", "a", "a"], parse_type("{U}"))
        assert value == SetVal([Atom("a"), Atom("b")])

    def test_nesting_follows_the_type(self):
        value = value_from_json([["a", "b"], []], parse_type("{{U}}"))
        assert value == SetVal([SetVal([Atom("a"), Atom("b")]), SetVal([])])

    def test_arity_mismatch(self):
        with pytest.raises(ProtocolError):
            value_from_json(["a"], parse_type("[U, U]"))

    def test_atoms_reject_non_scalars(self):
        with pytest.raises(ProtocolError):
            value_from_json(["a"], parse_type("U"))
        with pytest.raises(ProtocolError):
            value_from_json(True, parse_type("U"))
        assert value_from_json(3, parse_type("U")) == Atom(3)


class TestDatabaseFromSpec:
    SPEC = {
        "schema": {"R": "[U, U]", "S": "U", "N": "{U}"},
        "instances": {
            "R": [["a", "b"], ["b", "c"]],
            "S": ["a", "c"],
            "N": [["a", "b"], ["c"]],
        },
    }

    def test_builds_typed_instances(self):
        database = database_from_spec(self.SPEC)
        assert database["R"] == SetVal(
            [Tup([Atom("a"), Atom("b")]), Tup([Atom("b"), Atom("c")])]
        )
        assert database["N"] == SetVal(
            [SetVal([Atom("a"), Atom("b")]), SetVal([Atom("c")])]
        )

    def test_missing_predicates_default_empty(self):
        spec = {"schema": {"R": "U"}}
        assert database_from_spec(spec)["R"] == SetVal([])

    @pytest.mark.parametrize(
        "spec",
        [
            "not a dict",
            {},
            {"schema": {}},
            {"schema": {"R": "]["}},
            {"schema": {"R": "U"}, "instances": "nope"},
            {"schema": {"R": "U"}, "instances": {"Zzz": []}},
            {"schema": {"R": "U"}, "instances": {"R": "not rows"}},
        ],
    )
    def test_bad_specs_are_protocol_errors(self, spec):
        with pytest.raises(ProtocolError):
            database_from_spec(spec)

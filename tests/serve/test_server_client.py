"""TCP front end + retrying client, over real sockets on port 0."""

import socket
import threading

import pytest

from repro.serve.client import RetriesExhausted, ServeClient, ServeClientError
from repro.serve.server import ServeServer
from repro.serve.service import QueryService
from repro.workloads import serve_databases


@pytest.fixture()
def server():
    service = QueryService(serve_databases(), workers=2, intern=False)
    serve_server = ServeServer(service, port=0)
    serve_server.start()
    yield serve_server
    serve_server.stop()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServeClient(host, port, seed=0) as serve_client:
        yield serve_client


class TestRoundtrips:
    def test_ping(self, client):
        pong = client.ping()
        assert pong["ok"] and pong["version"] >= 1

    def test_query(self, client):
        reply = client.query("main", "{ x | S(x) }")
        assert reply["ok"]
        assert reply["result"] == "SetVal([Atom('a'), Atom('c')])"
        assert reply["undefined"] is False
        assert reply["backend"]

    def test_explain(self, client):
        text = client.explain("main", "{ x | S(x) }", run=True)
        assert "actuals:" in text

    def test_stats(self, client):
        client.query("main", "{ x | S(x) }")
        stats = client.stats()
        assert stats["metrics"]["queries_completed"] == 1
        assert stats["service"]["accepting"]

    def test_load_then_query(self, client):
        client.load("tiny", {"R": "U"}, {"R": ["p", "q"]})
        reply = client.query("tiny", "{ x | R(x) }")
        assert reply["result"] == "SetVal([Atom('p'), Atom('q')])"

    def test_concurrent_clients_share_the_service(self, server):
        host, port = server.address
        results = []
        lock = threading.Lock()

        def hit():
            with ServeClient(host, port, seed=0) as serve_client:
                for _ in range(5):
                    reply = serve_client.query("main", "{ x | S(x) }")
                    with lock:
                        results.append(reply["result"])

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 20
        assert set(results) == {"SetVal([Atom('a'), Atom('c')])"}
        stats = ServeClient(host, port).stats()
        assert stats["databases"]["main"]["memo"]["hits"] >= 19


class TestErrorsOverTheWire:
    def test_unknown_db_is_non_retryable(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.query("nope", "{ 1 }")
        assert exc_info.value.type == "unknown-database"
        assert not exc_info.value.retryable

    def test_bad_query_text_is_non_retryable(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.query("main", "{ x | Zzz(x) }")
        assert not exc_info.value.retryable

    def test_malformed_line_keeps_connection_alive(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            error = reader.readline()
            assert b'"ok": false' in error and b"protocol" in error
            # Same connection still answers a well-formed request.
            sock.sendall(b'{"op": "PING"}\n')
            assert b'"ok": true' in reader.readline()

    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.call({"op": "DELETE"}, retry=False)
        assert exc_info.value.type == "protocol"


class TestRetries:
    def test_retryable_rejection_retries_then_succeeds(self, server, monkeypatch):
        # First two answers are admission rejections, then the real one.
        host, port = server.address
        client = ServeClient(host, port, seed=0, backoff=0.001)
        real = client._roundtrip
        rejections = iter([0, 1])

        def flaky(message):
            if next(rejections, None) is not None:
                return {
                    "op": message["op"],
                    "ok": False,
                    "error": {"type": "rejected", "message": "full", "retryable": True},
                }
            return real(message)

        monkeypatch.setattr(client, "_roundtrip", flaky)
        reply = client.query("main", "{ x | S(x) }")
        assert reply["ok"]

    def test_retries_exhausted_carries_last_error(self, server, monkeypatch):
        host, port = server.address
        client = ServeClient(host, port, seed=0, retries=2, backoff=0.001)

        def always_full(message):
            return {
                "op": message["op"],
                "ok": False,
                "error": {"type": "rejected", "message": "full", "retryable": True},
            }

        monkeypatch.setattr(client, "_roundtrip", always_full)
        with pytest.raises(RetriesExhausted) as exc_info:
            client.query("main", "{ x | S(x) }")
        assert exc_info.value.type == "rejected"

    def test_transport_error_reconnects(self, server):
        host, port = server.address
        client = ServeClient(host, port, seed=0, backoff=0.001)
        assert client.ping()["ok"]
        # Kill the socket out from under the client; the next call
        # must reconnect and succeed.
        client._sock.close()
        assert client.ping()["ok"]
        client.close()

    def test_no_retry_raises_transport_error_immediately(self):
        # Nothing listens on this port: connect fails, retry=False
        # surfaces it as a typed client error at once.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = ServeClient("127.0.0.1", free_port, retries=0, backoff=0.001)
        with pytest.raises((ServeClientError, RetriesExhausted)):
            client.call({"op": "PING"}, retry=False)

    def test_backoff_is_capped_exponential_with_jitter(self):
        client = ServeClient(backoff=0.1, backoff_cap=0.4, jitter=0.0, seed=1)
        slept = []
        import repro.serve.client as client_module

        original = client_module.time.sleep
        client_module.time.sleep = slept.append
        try:
            for attempt in range(4):
                client._sleep(attempt)
        finally:
            client_module.time.sleep = original
        assert slept == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.4),
        ]

    def test_jitter_is_seeded_and_bounded(self):
        first = ServeClient(backoff=1.0, backoff_cap=10.0, jitter=0.5, seed=7)
        second = ServeClient(backoff=1.0, backoff_cap=10.0, jitter=0.5, seed=7)
        for client in (first, second):
            client._delays = []
        import repro.serve.client as client_module

        original = client_module.time.sleep
        try:
            client_module.time.sleep = first._delays.append
            for attempt in range(5):
                first._sleep(attempt)
            client_module.time.sleep = second._delays.append
            for attempt in range(5):
                second._sleep(attempt)
        finally:
            client_module.time.sleep = original
        assert first._delays == second._delays  # seeded → reproducible
        for attempt, delay in enumerate(first._delays):
            base = min(1.0 * (2 ** attempt), 10.0)
            assert 0.5 * base <= delay <= 1.5 * base

"""``python -m repro.serve`` exits with a one-line error — never a
traceback — on malformed ``--db`` specs (the CLI boundary satellite)."""

import json
import pathlib
import subprocess
import sys

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        capture_output=True,
        text=True,
        timeout=60,
        env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
    )


def assert_one_line_error(proc, needle):
    assert proc.returncode != 0
    assert "Traceback" not in proc.stderr and "Traceback" not in proc.stdout
    message = proc.stderr.strip()
    assert message and len(message.splitlines()) == 1
    assert needle in message


class TestBadDbSpecs:
    def test_missing_file(self):
        proc = run_cli("--db", "/nonexistent/db.json")
        assert_one_line_error(proc, "no such file")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        proc = run_cli("--db", str(path))
        assert_one_line_error(proc, "--db")

    def test_json_that_is_not_a_database(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps(["not", "a", "spec"]))
        proc = run_cli("--db", str(path))
        assert_one_line_error(proc, "--db")

    def test_bad_schema_type_string(self, tmp_path):
        path = tmp_path / "badtype.json"
        path.write_text(json.dumps({"schema": {"R": "{{{"}}))
        proc = run_cli("--db", str(path))
        assert_one_line_error(proc, "--db")

    def test_generator_without_name(self):
        proc = run_cli("--db", "chain:4")
        assert_one_line_error(proc, "generator specs need name=")

    def test_generator_with_bad_argument(self):
        proc = run_cli("--db", "g=chain:notanumber")
        assert_one_line_error(proc, "bad generator arguments")

    def test_generator_with_wrong_arity(self):
        proc = run_cli("--db", "g=random:1")
        assert_one_line_error(proc, "bad generator arguments")

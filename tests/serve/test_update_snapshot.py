"""UPDATE / SNAPSHOT over the wire, and the durable service lifecycle."""

import pytest

from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ServeServer
from repro.serve.service import QueryService, StoreUnavailable

TC = "rules { T(x, y) :- E(x, y). T(x, z) :- E(x, y), T(y, z). } answer T"


def graph_db(edges):
    schema = Schema({"E": parse_type("[U, U]"), "S": parse_type("U")})
    return Database(schema, {"E": set(edges), "S": set()})


@pytest.fixture()
def durable_service(tmp_path):
    service = QueryService(
        {"main": graph_db([("a", "b"), ("b", "c")])},
        workers=2,
        intern=False,
        data_dir=str(tmp_path / "data"),
        sync=False,
    )
    yield service
    service.close()


@pytest.fixture()
def client(durable_service):
    server = ServeServer(durable_service, port=0)
    host, port = server.start()
    with ServeClient(host, port, seed=0) as serve_client:
        yield serve_client
    server.stop(close_service=False)


class TestEmbeddedUpdate:
    def test_in_memory_update_without_store(self):
        service = QueryService(
            {"main": graph_db([("a", "b")])}, workers=1, intern=False
        )
        try:
            outcome = service.update("main", asserts={"E": [["b", "c"]]})
            result = outcome.raise_for_status()
            assert result["asserted"] == 1 and result["retracted"] == 0
            assert result["durable"] is False and result["lsn"] is None
            answer = service.query("main", TC).raise_for_status()
            assert "Atom('c')" in repr(answer)
        finally:
            service.close()

    def test_snapshot_without_store_is_typed(self):
        service = QueryService(
            {"main": graph_db([("a", "b")])}, workers=1, intern=False
        )
        try:
            with pytest.raises(StoreUnavailable):
                service.snapshot("main")
        finally:
            service.close()

    def test_writes_serialize_per_database(self, durable_service):
        outcomes = [
            durable_service.update("main", asserts={"E": [[str(i), str(i + 1)]]})
            for i in range(6)
        ]
        lsns = [outcome.raise_for_status()["lsn"] for outcome in outcomes]
        assert lsns == sorted(lsns)  # monotone commit order
        assert len(set(lsns)) == len(lsns)


class TestWireUpdate:
    def test_update_commits_and_queries_see_it(self, client):
        before = client.query("main", TC)["result"]
        reply = client.update("main", asserts={"E": [["c", "d"]]})
        assert reply["ok"] and reply["asserted"] == 1
        assert isinstance(reply["lsn"], int) and reply["durable"]
        after = client.query("main", TC)["result"]
        assert after != before and "Atom('d')" in after

    def test_noop_update_is_lsn_free(self, client):
        reply = client.update("main", asserts={"E": [["a", "b"]]})
        assert reply["asserted"] == 0 and reply["retracted"] == 0

    def test_retract_over_the_wire(self, client):
        reply = client.update("main", retracts={"E": [["a", "b"]]})
        assert reply["retracted"] == 1
        after = client.query("main", TC)["result"]
        assert "Atom('a')" not in after

    def test_unknown_predicate_is_protocol_error(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.update("main", asserts={"Ghost": [["a"]]})
        assert exc_info.value.type == "protocol"

    def test_ill_typed_rows_are_protocol_errors(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.update("main", asserts={"E": [["only-one"]]})
        assert exc_info.value.type == "protocol"

    def test_empty_update_is_protocol_error(self, client):
        with pytest.raises(ServeClientError) as exc_info:
            client.call({"op": "UPDATE", "db": "main"}, retry=False)
        assert exc_info.value.type == "protocol"

    def test_snapshot_truncates_the_wal(self, client):
        client.update("main", asserts={"E": [["c", "d"]]})
        stats = client.stats()
        assert stats["databases"]["main"]["store"]["wal_size"] > 0
        reply = client.snapshot("main")
        assert reply["ok"] and reply["snapshot"].startswith("snapshot-")
        stats = client.stats()
        assert stats["databases"]["main"]["store"]["wal_size"] == 0

    def test_store_counters_in_stats(self, client):
        client.update("main", asserts={"E": [["c", "d"]]})
        stats = client.stats()
        metrics = stats["metrics"]
        assert metrics["updates_applied"] == 1
        assert metrics["wal_appends"] == 1
        assert metrics["wal_bytes"] > 0
        assert metrics["invalidations"] >= 0
        store = stats["databases"]["main"]["store"]
        assert store["wal_appends"] == 1 and store["lsn"] == 1
        assert len(store["state_sha256"]) == 64


class TestDurableLifecycle:
    def test_restart_recovers_identical_state(self, tmp_path):
        data_dir = str(tmp_path / "data")
        service = QueryService(
            {"main": graph_db([("a", "b")])},
            workers=1, intern=False, data_dir=data_dir, sync=False,
        )
        service.update("main", asserts={"E": [["b", "c"]]}).raise_for_status()
        sha = service.stats()["databases"]["main"]["store"]["state_sha256"]
        answer = repr(service.query("main", TC).raise_for_status())
        service.close()

        recovered = QueryService(
            workers=1, intern=False, data_dir=data_dir, sync=False
        )
        try:
            stats = recovered.stats()
            assert list(stats["databases"]) == ["main"]
            assert stats["databases"]["main"]["store"]["state_sha256"] == sha
            assert stats["metrics"]["recoveries"] == 1
            assert repr(recovered.query("main", TC).raise_for_status()) == answer
        finally:
            recovered.close()

    def test_disk_wins_over_seed_on_restart(self, tmp_path):
        data_dir = str(tmp_path / "data")
        service = QueryService(
            {"main": graph_db([("a", "b")])},
            workers=1, intern=False, data_dir=data_dir, sync=False,
        )
        service.update("main", asserts={"E": [["b", "c"]]}).raise_for_status()
        sha = service.stats()["databases"]["main"]["store"]["state_sha256"]
        service.close()

        reseeded = QueryService(
            {"main": graph_db([("z", "z")])},  # ignored: disk wins
            workers=1, intern=False, data_dir=data_dir, sync=False,
        )
        try:
            assert (
                reseeded.stats()["databases"]["main"]["store"]["state_sha256"]
                == sha
            )
        finally:
            reseeded.close()

    def test_load_refuses_replace_when_durable(self, durable_service):
        from repro.serve.service import ServeError

        with pytest.raises(ServeError, match="replace"):
            durable_service.load("main", graph_db([]), replace=True)

    def test_loaded_database_becomes_durable(self, durable_service):
        durable_service.load("extra", graph_db([("x", "y")]))
        assert "extra" in durable_service.store.names()
        outcome = durable_service.update("extra", asserts={"E": [["y", "z"]]})
        assert outcome.raise_for_status()["durable"] is True

"""Unit tests for the workload generators."""

from repro.model.values import Atom, Tup
from repro.workloads import (
    atoms,
    chain_for_bk,
    chain_graph,
    cycle_graph,
    join_pair,
    random_binary_pairs,
    random_graph,
    suite_binary,
    suite_unary,
    unary_instance,
)


class TestShapes:
    def test_atoms(self):
        assert atoms(3) == [Atom("a0"), Atom("a1"), Atom("a2")]

    def test_unary_instance(self):
        assert len(unary_instance(4)["R"]) == 4

    def test_chain(self):
        db = chain_graph(3)
        assert len(db["R"]) == 3
        assert Tup([Atom("a0"), Atom("a1")]) in db["R"]

    def test_cycle(self):
        db = cycle_graph(4)
        assert len(db["R"]) == 4
        assert Tup([Atom("a3"), Atom("a0")]) in db["R"]

    def test_random_graph_no_self_loops(self):
        db = random_graph(4, 8, seed=1)
        for row in db["R"].items:
            assert row.items[0] != row.items[1]

    def test_join_pair_schema(self):
        db = join_pair(3, 3, overlap=2, seed=0)
        assert set(db.schema.names()) == {"R", "S"}

    def test_chain_for_bk(self):
        data = chain_for_bk(2)
        assert len(data["S"]) == 3
        assert data["S"][0]["A"] == "$"
        assert data["S"][-1]["B"] == "#"


class TestDeterminism:
    def test_seeded(self):
        assert random_binary_pairs(4, 4, seed=7) == random_binary_pairs(4, 4, seed=7)
        assert random_binary_pairs(4, 4, seed=7) != random_binary_pairs(4, 4, seed=8)

    def test_suites_are_stable(self):
        assert suite_unary() == suite_unary()
        assert suite_binary() == suite_binary()

"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.budget import Budget
from repro.model import Atom, Database, Schema, SetVal, Tup, parse_type


@pytest.fixture
def unlimited():
    """Factory for budgets with no limits (provably terminating runs)."""

    def make() -> Budget:
        return Budget(
            steps=None, objects=None, iterations=None, facts=None, stages=None
        )

    return make


@pytest.fixture
def binary_db():
    """A small binary relation R = {(1,2), (2,3), (3,3)}."""
    schema = Schema({"R": parse_type("[U, U]")})
    return Database(schema, {"R": {(1, 2), (2, 3), (3, 3)}})


@pytest.fixture
def unary_db():
    """A small unary relation R = {1, 2, 3}."""
    schema = Schema({"R": parse_type("U")})
    return Database(schema, {"R": {1, 2, 3}})


def atoms(*labels):
    return [Atom(label) for label in labels]


def pairs(*tuples):
    return SetVal([Tup([Atom(a), Atom(b)]) for a, b in tuples])

"""The type-directed JSON codec — the single byte boundary for LOAD,
the WAL, and snapshots.

The hypothesis property here is the satellite the wire protocol rides
on: any value of a nested set/tuple rtype round-trips through the
codec, and the *same* functions back ``LOAD`` (via
``repro.serve.protocol``) and the WAL payloads, so one property covers
both paths.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.schema import Database, Schema
from repro.model.types import SetType, TupleType, parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.serve.protocol import ProtocolError, value_from_json as wire_value_from_json
from repro.store.codec import (
    CodecError,
    database_from_spec,
    database_to_spec,
    rows_from_json,
    value_from_json,
    value_to_json,
)

RTYPES = [
    parse_type(text)
    for text in (
        "U",
        "{U}",
        "[U, U]",
        "{[U, U]}",
        "[{U}, U]",
        "{{U}}",
        "[U, {[U, U]}]",
    )
]

_labels = st.one_of(
    st.text(alphabet="abcde", min_size=1, max_size=4),
    st.integers(min_value=0, max_value=99),
)


def value_strategy(rtype):
    """Random values of *rtype*, built type-directedly."""
    if isinstance(rtype, SetType):
        return st.lists(value_strategy(rtype.element), max_size=4).map(SetVal)
    if isinstance(rtype, TupleType):
        return st.tuples(
            *(value_strategy(component) for component in rtype.components)
        ).map(lambda items: Tup(list(items)))
    return _labels.map(Atom)


@st.composite
def typed_values(draw):
    rtype = draw(st.sampled_from(RTYPES))
    return rtype, draw(value_strategy(rtype))


class TestValueRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(typed_values())
    def test_encode_decode_is_identity(self, pair):
        rtype, value = pair
        data = value_to_json(value, rtype)
        assert value_from_json(data, rtype) == value

    @settings(max_examples=200, deadline=None)
    @given(typed_values())
    def test_wire_decoder_is_the_same_codec(self, pair):
        # The protocol's value_from_json delegates here — LOAD and the
        # WAL literally share one decoder.
        rtype, value = pair
        data = value_to_json(value, rtype)
        assert wire_value_from_json(data, rtype) == value

    @settings(max_examples=200, deadline=None)
    @given(typed_values())
    def test_encoding_survives_json_serialization(self, pair):
        rtype, value = pair
        data = json.loads(json.dumps(value_to_json(value, rtype)))
        assert value_from_json(data, rtype) == value

    @settings(max_examples=100, deadline=None)
    @given(typed_values())
    def test_decode_encode_is_idempotent(self, pair):
        # JSON→value canonicalises (dedup, sorted sets); a second pass
        # is the identity on the canonical form.
        rtype, value = pair
        once = value_to_json(value, rtype)
        assert value_to_json(value_from_json(once, rtype), rtype) == once


class TestDirectedErrors:
    def test_tuple_arity_is_checked(self):
        with pytest.raises(CodecError):
            value_from_json(["a"], parse_type("[U, U]"))

    def test_atom_rejects_arrays_and_bools(self):
        with pytest.raises(CodecError):
            value_from_json(["a"], parse_type("U"))
        with pytest.raises(CodecError):
            value_from_json(True, parse_type("U"))

    def test_set_rejects_scalars(self):
        with pytest.raises(CodecError):
            value_from_json("a", parse_type("{U}"))

    def test_rows_must_be_an_array(self):
        with pytest.raises(CodecError, match="rows must be an array"):
            rows_from_json({"a": 1}, parse_type("U"), "R")

    def test_wire_wrapper_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            wire_value_from_json(["a"], parse_type("U"))


class TestDatabaseSpec:
    def _db(self):
        schema = Schema(
            {"E": parse_type("[U, U]"), "S": parse_type("{U}")}
        )
        return Database(
            schema,
            {
                "E": {("a", "b"), ("b", "c")},
                "S": [SetVal([Atom("x")]), SetVal([])],
            },
        )

    def test_spec_round_trip(self):
        database = self._db()
        spec = database_to_spec(database)
        assert database_from_spec(spec) == database

    def test_spec_is_canonical_bytes(self):
        database = self._db()
        first = json.dumps(database_to_spec(database), sort_keys=True)
        second = json.dumps(database_to_spec(database), sort_keys=True)
        assert first == second

    def test_missing_instances_default_empty(self):
        database = database_from_spec({"schema": {"R": "U"}})
        assert database["R"] == SetVal([])

    def test_bad_schema_is_codec_error(self):
        with pytest.raises(CodecError, match="bad schema"):
            database_from_spec({"schema": {"R": "not-a-type("}})

    def test_undeclared_instances_rejected(self):
        with pytest.raises(CodecError, match="undeclared"):
            database_from_spec(
                {"schema": {"R": "U"}, "instances": {"Q": ["a"]}}
            )

    def test_non_object_spec_rejected(self):
        with pytest.raises(CodecError):
            database_from_spec(["not", "an", "object"])

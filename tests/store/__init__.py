"""Tests for repro.store: codec, WAL, snapshots, recovery, maintenance."""

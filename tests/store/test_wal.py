"""The write-ahead log: framing, CRC, torn tails, truncation."""

import pytest

from repro.store.wal import (
    WalError,
    WriteAheadLog,
    encode_record,
    read_records,
)


def write_log(path, payloads, sync=False):
    log = WriteAheadLog(path, sync=sync)
    log.open()
    for lsn, payload in enumerate(payloads, start=1):
        log.append(lsn, payload)
    log.close()
    return path


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [{"assert": {"R": ["a"]}}, {"retract": {"R": ["b"]}}]
        write_log(path, payloads)
        records, valid = read_records(path)
        assert [record.payload for record in records] == payloads
        assert [record.lsn for record in records] == [1, 2]
        assert valid == path.stat().st_size

    def test_missing_file_reads_empty(self, tmp_path):
        records, valid = read_records(tmp_path / "absent.log")
        assert records == [] and valid == 0

    def test_record_ends_partition_the_file(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, [{"a": i} for i in range(5)])
        records, valid = read_records(path)
        assert records[-1].end == valid
        sizes = [len(encode_record(r.lsn, r.payload)) for r in records]
        ends = []
        offset = 0
        for size in sizes:
            offset += size
            ends.append(offset)
        assert [record.end for record in records] == ends

    def test_counters(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.log", sync=False)
        log.open()
        size = log.append(1, {"x": 1})
        assert log.appends == 1 and log.bytes_written == size == log.size()
        log.close()


class TestTornTails:
    def test_every_truncation_yields_a_valid_prefix(self, tmp_path):
        """The torn-tail property at the log layer: cutting the file at
        ANY byte offset, read_records returns exactly the records whose
        bytes fully survived."""
        path = tmp_path / "wal.log"
        write_log(path, [{"n": i, "pad": "x" * i} for i in range(4)])
        data = path.read_bytes()
        full_records, _ = read_records(path)
        ends = [0] + [record.end for record in full_records]
        torn = tmp_path / "torn.log"
        for cut in range(len(data) + 1):
            torn.write_bytes(data[:cut])
            records, valid = read_records(torn)
            survived = max(end for end in ends if end <= cut)
            assert valid == survived
            assert len(records) == ends.index(survived)

    def test_corrupt_crc_stops_reading(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, [{"n": 1}, {"n": 2}])
        records, _ = read_records(path)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the second record.
        data[records[0].end + len(b"W1 2 ")] ^= 0xFF
        path.write_bytes(bytes(data))
        survivors, valid = read_records(path)
        assert len(survivors) == 1 and valid == records[0].end

    def test_garbage_header_stops_reading(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, [{"n": 1}])
        end = read_records(path)[1]
        with open(path, "ab") as handle:
            handle.write(b"ZZ not a header\n")
        survivors, valid = read_records(path)
        assert len(survivors) == 1 and valid == end

    def test_open_truncates_the_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        write_log(path, [{"n": 1}])
        _, valid = read_records(path)
        with open(path, "ab") as handle:
            handle.write(b"W1 2 00000000 999\ntorn")
        log = WriteAheadLog(path, sync=False)
        log.open(truncate_at=valid)
        assert path.stat().st_size == valid
        log.append(2, {"n": 2})
        log.close()
        records, _ = read_records(path)
        assert [record.lsn for record in records] == [1, 2]


class TestLifecycle:
    def test_append_requires_open(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.log")
        with pytest.raises(WalError):
            log.append(1, {})

    def test_reset_empties_the_log(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.log", sync=False)
        log.open()
        log.append(1, {"n": 1})
        log.reset()
        assert log.size() == 0
        log.append(2, {"n": 2})
        log.close()
        records, _ = read_records(log.path)
        assert [record.lsn for record in records] == [2]

"""Incremental maintenance: the differential acceptance test.

A materialized view refreshed by semi-naive delta rounds must be
**byte-identical** to a from-scratch recompute after every committed
delta, on every driver the view stands in for; retractions fall back
to dropping the view, and the recompute must then be correct.
"""

import random

import pytest

from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.query.session import Session
from repro.store.codec import rows_from_json
from repro.store.maintenance import BKView, ColView, ViewRegistry, delta_safe
from repro.store.tx import apply_ops

TC = "rules { T(x, y) :- E(x, y). T(x, z) :- E(x, y), T(y, z). } answer T"
NEGATED = "rules { P(x) :- S(x), not T(x). T(x) :- E(x, x). } answer P"
BK_PRODUCT = "bk { A({x, y}) :- R(x), S(y). } answer A"

COL_DRIVERS = ("col-stratified", "col-inflationary", "col-naive")
BK_DRIVERS = ("bk-hashjoin", "bk-dirty", "bk-naive")


def graph_db(edges, nodes=()):
    schema = Schema({"E": parse_type("[U, U]"), "S": parse_type("U")})
    return Database(schema, {"E": set(edges), "S": set(nodes)})


def program_of(text, database):
    return Session(database).plan(text).query.program


def decode(database, asserts=None, retracts=None):
    schema = database.schema
    return tuple(
        {
            name: rows_from_json(rows, schema.rtype(name), name)
            for name, rows in (batch or {}).items()
        }
        for batch in (asserts, retracts)
    )


class TestDeltaSafety:
    def test_monotone_program_is_safe(self):
        database = graph_db([("a", "b")])
        assert delta_safe(program_of(TC, database))

    def test_negation_is_unsafe(self):
        database = graph_db([("a", "b")], nodes=["a"])
        assert not delta_safe(program_of(NEGATED, database))


class TestColDifferential:
    def test_incremental_equals_recompute_on_every_driver(self):
        """Random insert stream: after every commit the view's answer is
        byte-identical to a cold run on each COL driver."""
        rng = random.Random(7)
        nodes = "abcdefg"
        database = graph_db([("a", "b")])
        view = ColView(program_of(TC, database), database)
        for _ in range(12):
            edge = [rng.choice(nodes), rng.choice(nodes)]
            asserts, retracts = decode(database, {"E": [edge]})
            database, delta = apply_ops(database, asserts, retracts)
            if delta.empty():
                continue
            rounds = view.insert(database, delta)
            assert rounds >= 1
            incremental = repr(view.answer())
            for backend in COL_DRIVERS:
                cold = Session(database)
                result, report = cold.run(TC, backend=backend)
                assert report.backend == backend
                assert repr(result) == incremental, backend

    def test_view_database_tracks_commits(self):
        database = graph_db([("a", "b")])
        view = ColView(program_of(TC, database), database)
        asserts, _ = decode(database, {"E": [["b", "c"]]})
        new_database, delta = apply_ops(database, asserts, None)
        view.insert(new_database, delta)
        assert view.database == new_database


class TestBKDifferential:
    def test_incremental_equals_recompute_on_every_driver(self):
        schema = Schema({"R": parse_type("U"), "S": parse_type("U")})
        database = Database(schema, {"R": {"a"}, "S": {"x"}})
        view = BKView(program_of(BK_PRODUCT, database), database)
        rng = random.Random(11)
        for _ in range(8):
            pred = rng.choice(["R", "S"])
            label = rng.choice("abcxyz")
            asserts, retracts = decode(database, {pred: [label]})
            database, delta = apply_ops(database, asserts, retracts)
            if delta.empty():
                continue
            view.insert(database, delta)
            incremental = repr(view.answer())
            for backend in BK_DRIVERS:
                cold = Session(database)
                result, report = cold.run(BK_PRODUCT, backend=backend)
                assert report.backend == backend
                assert repr(result) == incremental, backend


class TestViewRegistry:
    def _registered(self):
        database = graph_db([("a", "b"), ("b", "c")], nodes=["a"])
        view = ColView(program_of(TC, database), database)
        registry = ViewRegistry()
        registry.register("tc", view)
        return database, view, registry

    def test_lookup_requires_currency(self):
        database, view, registry = self._registered()
        assert registry.lookup("tc", database) is view
        other = graph_db([("z", "z")])
        assert registry.lookup("tc", other) is None
        assert registry.answer("tc", database) == view.answer()
        assert registry.answer("tc", other) is None

    def test_insert_delta_refreshes(self):
        database, view, registry = self._registered()
        asserts, _ = decode(database, {"E": [["c", "d"]]})
        new_database, delta = apply_ops(database, asserts, None)
        stats = registry.apply_delta(new_database, delta)
        assert stats["refreshed"] == 1 and stats["dropped"] == 0
        assert stats["incremental_rounds"] >= 1
        assert registry.lookup("tc", new_database) is view

    def test_retraction_in_footprint_drops(self):
        database, view, registry = self._registered()
        _, retracts = decode(database, None, {"E": [["a", "b"]]})
        new_database, delta = apply_ops(database, None, retracts)
        stats = registry.apply_delta(new_database, delta)
        assert stats["dropped"] == 1 and stats["refreshed"] == 0
        assert registry.lookup("tc", new_database) is None
        # Recompute after the drop is correct: no a-paths survive.
        result, _ = Session(new_database).run(TC, backend="col-stratified")
        assert "Atom('a')" not in repr(result)

    def test_disjoint_delta_rebases(self):
        database, view, registry = self._registered()
        asserts, _ = decode(database, {"S": ["q"]})
        new_database, delta = apply_ops(database, asserts, None)
        stats = registry.apply_delta(new_database, delta)
        assert stats["rebased"] == 1
        assert stats["refreshed"] == 0 and stats["incremental_rounds"] == 0
        assert registry.lookup("tc", new_database) is view


class TestBudgetedRefresh:
    def test_exhausted_refresh_drops_the_view(self):
        from repro.budget import Budget

        database = graph_db([("a", "b")])
        view = ColView(program_of(TC, database), database)
        # Starve the view's own budget after construction.
        view.budget = Budget(facts=1)
        registry = ViewRegistry()
        registry.register("tc", view)
        asserts, _ = decode(database, {"E": [["b", "c"], ["c", "d"], ["d", "e"]]})
        new_database, delta = apply_ops(database, asserts, None)
        stats = registry.apply_delta(new_database, delta)
        assert stats["dropped"] == 1
        assert registry.lookup("tc", new_database) is None

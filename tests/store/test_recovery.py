"""Crash recovery: the acceptance property.

Truncating the WAL at **any** byte offset and recovering must yield a
database byte-identical (canonical state bytes) to the state at the
last commit whose record fully survived — never a partial transaction,
never a corrupt state.
"""

import pytest

from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.store.durable import DurableDatabase, StoreError
from repro.store.snapshot import CompactionPolicy, canonical_state_bytes
from repro.store.store import Store
from repro.store.wal import read_records


def seed_db():
    schema = Schema({"E": parse_type("[U, U]"), "S": parse_type("U")})
    return Database(schema, {"E": {("a", "b")}, "S": {"a"}})


def committed_states(tmp_path, transactions):
    """Build a durable database applying *transactions*; returns the
    directory and the canonical bytes after each commit (index 0 = the
    seed state)."""
    directory = tmp_path / "db"
    durable = DurableDatabase.create(directory, seed_db(), sync=False)
    states = [canonical_state_bytes(durable.database)]
    for asserts, retracts in transactions:
        durable.apply(asserts, retracts)
        states.append(canonical_state_bytes(durable.database))
    durable.close()
    return directory, states


TRANSACTIONS = [
    ({"E": [["b", "c"]]}, None),
    ({"E": [["c", "d"]], "S": ["b"]}, None),
    (None, {"E": [["a", "b"]]}),
    ({"S": ["c", "d"]}, {"S": ["a"]}),
]


def decode_tx(database, tx):
    """Turn plain-JSON transaction rows into Values for apply()."""
    from repro.store.codec import rows_from_json

    asserts, retracts = tx
    schema = database.schema
    return tuple(
        {
            name: rows_from_json(rows, schema.rtype(name), name)
            for name, rows in (batch or {}).items()
        }
        for batch in (asserts, retracts)
    )


class TestRecoveryProperty:
    def test_any_truncation_recovers_a_durable_prefix(self, tmp_path):
        directory = tmp_path / "db"
        durable = DurableDatabase.create(directory, seed_db(), sync=False)
        states = [canonical_state_bytes(durable.database)]
        for tx in TRANSACTIONS:
            durable.apply(*decode_tx(durable.database, tx))
            states.append(canonical_state_bytes(durable.database))
        durable.close()

        wal_path = directory / DurableDatabase.WAL_NAME
        data = wal_path.read_bytes()
        records, _ = read_records(wal_path)
        ends = [0] + [record.end for record in records]
        for cut in range(len(data) + 1):
            wal_path.write_bytes(data[:cut])
            recovered = DurableDatabase.open(directory, sync=False)
            survived = max(end for end in ends if end <= cut)
            expected = states[ends.index(survived)]
            assert canonical_state_bytes(recovered.database) == expected
            assert recovered.stats.recoveries == 1
            assert recovered.stats.replayed_records == ends.index(survived)
            # Recovery truncated the torn tail on disk.
            assert wal_path.stat().st_size == survived
            recovered.close()

    def test_recovery_is_byte_identical_after_full_log(self, tmp_path):
        directory = tmp_path / "db"
        durable = DurableDatabase.create(directory, seed_db(), sync=False)
        for tx in TRANSACTIONS:
            durable.apply(*decode_tx(durable.database, tx))
        final = canonical_state_bytes(durable.database)
        lsn = durable.lsn
        durable.close()
        recovered = DurableDatabase.open(directory, sync=False)
        assert canonical_state_bytes(recovered.database) == final
        assert recovered.lsn == lsn
        recovered.close()

    def test_crash_between_snapshot_and_truncation(self, tmp_path):
        """A snapshot that renamed but never truncated the log: replay
        must skip records already folded into the snapshot."""
        from repro.store.snapshot import write_snapshot

        directory = tmp_path / "db"
        durable = DurableDatabase.create(directory, seed_db(), sync=False)
        for tx in TRANSACTIONS[:2]:
            durable.apply(*decode_tx(durable.database, tx))
        # Simulate the crash: snapshot written, WAL left alone.
        write_snapshot(directory, durable.lsn, durable.database)
        final = canonical_state_bytes(durable.database)
        durable.close()
        recovered = DurableDatabase.open(directory, sync=False)
        assert canonical_state_bytes(recovered.database) == final
        assert recovered.stats.replayed_records == 0
        recovered.close()


class TestCompaction:
    def test_policy_triggers_snapshot_and_truncates(self, tmp_path):
        directory = tmp_path / "db"
        durable = DurableDatabase.create(
            directory, seed_db(), sync=False,
            policy=CompactionPolicy(max_records=2, max_bytes=1 << 20),
        )
        first = durable.apply(*decode_tx(durable.database, TRANSACTIONS[0]))
        assert not first.compacted
        second = durable.apply(*decode_tx(durable.database, TRANSACTIONS[1]))
        assert second.compacted
        assert durable.wal.size() == 0
        assert durable.records_since_snapshot == 0
        final = canonical_state_bytes(durable.database)
        durable.close()
        recovered = DurableDatabase.open(directory, sync=False)
        assert canonical_state_bytes(recovered.database) == final
        recovered.close()

    def test_empty_delta_appends_nothing(self, tmp_path):
        directory = tmp_path / "db"
        durable = DurableDatabase.create(directory, seed_db(), sync=False)
        before = durable.wal.size()
        result = durable.apply(*decode_tx(durable.database, ({"S": ["a"]}, None)))
        assert result.delta.empty() and result.bytes_appended == 0
        assert durable.wal.size() == before and durable.lsn == 0
        durable.close()


class TestStoreDirectory:
    def test_create_then_reopen(self, tmp_path):
        store = Store(tmp_path / "root", sync=False)
        durable = store.open_or_create("main", seed=seed_db())
        durable.apply(*decode_tx(durable.database, TRANSACTIONS[0]))
        final = canonical_state_bytes(durable.database)
        store.close()
        reopened = Store(tmp_path / "root", sync=False)
        assert list(reopened.discovered()) == ["main"]
        recovered = reopened.open_or_create("main")
        assert canonical_state_bytes(recovered.database) == final
        reopened.close()

    def test_disk_wins_over_seed(self, tmp_path):
        store = Store(tmp_path / "root", sync=False)
        durable = store.open_or_create("main", seed=seed_db())
        durable.apply(*decode_tx(durable.database, TRANSACTIONS[0]))
        final = canonical_state_bytes(durable.database)
        store.close()
        reopened = Store(tmp_path / "root", sync=False)
        recovered = reopened.open_or_create("main", seed=seed_db())
        assert canonical_state_bytes(recovered.database) == final
        reopened.close()

    def test_unknown_name_without_seed(self, tmp_path):
        store = Store(tmp_path / "root", sync=False)
        with pytest.raises(StoreError, match="not found"):
            store.open_or_create("ghost")

    def test_unsafe_names_rejected(self, tmp_path):
        store = Store(tmp_path / "root", sync=False)
        for name in ("../evil", "", ".hidden", "a/b"):
            with pytest.raises(StoreError, match="invalid database name"):
                store.open_or_create(name, seed=seed_db())

    def test_create_refuses_existing_directory(self, tmp_path):
        directory = tmp_path / "db"
        DurableDatabase.create(directory, seed_db(), sync=False).close()
        with pytest.raises(StoreError, match="already holds"):
            DurableDatabase.create(directory, seed_db(), sync=False)

"""Unit tests for orderings and the counter sequence."""

import pytest

from repro.errors import EvaluationError
from repro.model.ordering import (
    counter_next,
    counter_rank,
    counter_sequence,
    enumerate_orderings,
    order_tuples,
)
from repro.model.values import Atom, SetVal, Tup


class TestCounterSequence:
    def test_shape(self):
        a = Atom("a")
        seq = counter_sequence(a, 4)
        assert seq[0] == a
        assert seq[1] == SetVal([a])
        assert seq[2] == SetVal([a, SetVal([a])])
        assert seq[3] == SetVal(seq[:3])

    def test_all_distinct(self):
        seq = counter_sequence(Atom("a"), 8)
        assert len(set(seq)) == 8

    def test_no_new_atoms(self):
        from repro.model.values import adom

        a = Atom("a")
        for value in counter_sequence(a, 5)[1:]:
            assert adom(value) == frozenset({a})

    def test_empty_seed_works(self):
        # Seeding at ∅ gives a completely atom-free index supply.
        seq = counter_sequence(SetVal([]), 3)
        from repro.model.values import adom

        assert all(adom(v) == frozenset() for v in seq)

    def test_negative_length(self):
        with pytest.raises(EvaluationError):
            counter_sequence(Atom("a"), -1)


class TestCounterNext:
    def test_next_is_set_of_all(self):
        seq = counter_sequence(Atom("a"), 3)
        assert counter_next(seq) == SetVal(seq)

    def test_next_extends_sequence(self):
        seq = counter_sequence(Atom("a"), 3)
        assert counter_next(seq) == counter_sequence(Atom("a"), 4)[3]


class TestCounterRank:
    def test_ranks(self):
        a = Atom("a")
        seq = counter_sequence(a, 5)
        for rank, value in enumerate(seq):
            assert counter_rank(value, a) == rank

    def test_non_member(self):
        assert counter_rank(Atom("b"), Atom("a")) is None
        assert counter_rank(SetVal([Atom("b")]), Atom("a")) is None


class TestEnumerateOrderings:
    def test_all(self):
        atoms = [Atom(i) for i in range(3)]
        orderings = list(enumerate_orderings(atoms))
        assert len(orderings) == 6
        assert len(set(orderings)) == 6

    def test_limit(self):
        atoms = [Atom(i) for i in range(4)]
        assert len(list(enumerate_orderings(atoms, limit=5))) == 5

    def test_starts_canonical(self):
        atoms = [Atom(2), Atom(0), Atom(1)]
        first = next(enumerate_orderings(atoms))
        assert first == (Atom(0), Atom(1), Atom(2))


class TestOrderTuples:
    def test_orders_by_given_atom_order(self):
        rows = [Tup([Atom("b"), Atom("x")]), Tup([Atom("a"), Atom("x")])]
        forward = order_tuples(rows, [Atom("a"), Atom("b"), Atom("x")])
        backward = order_tuples(rows, [Atom("b"), Atom("a"), Atom("x")])
        assert forward[0].items[0] == Atom("a")
        assert backward[0].items[0] == Atom("b")

    def test_bare_atoms(self):
        rows = [Atom("b"), Atom("a")]
        assert order_tuples(rows, [Atom("b"), Atom("a")]) == [Atom("b"), Atom("a")]

    def test_unlisted_atoms_sort_after(self):
        rows = [Atom("zzz"), Atom("a")]
        ordered = order_tuples(rows, [Atom("a")])
        assert ordered == [Atom("a"), Atom("zzz")]

"""Property tests for construction-time cached structural metadata.

Every Value caches its canon key, 64-bit structural hash, depth, size,
active-atom set, and ⊤-flag at ``__new__`` time.  These tests pin down
the invariants the hot paths rely on:

* ``a == b  ⇔  a.canon_key() == b.canon_key()`` (total order agrees
  with equality);
* structural-hash collisions are allowed but never change equality
  semantics (the hash is a prefilter, equality stays structural);
* metadata survives pickling, with and without interning;
* set members are pre-sorted once — iteration, ``repr``, and
  ``sorted_members()`` all expose the same cached order.
"""

import pickle
import random

import pytest

from repro.engine import intern
from repro.model.values import (
    BOTTOM,
    TOP,
    Atom,
    NamedTup,
    SetVal,
    Tup,
    Value,
    adom,
    canon_key,
    set_height,
    value_size,
)


def random_value(rng: random.Random, max_depth: int = 4) -> Value:
    """A deterministic pseudo-random member of cons_Obj({a..e})."""
    if max_depth == 0 or rng.random() < 0.35:
        return Atom(rng.choice("abcde"))
    if rng.random() < 0.5:
        return Tup(
            [random_value(rng, max_depth - 1) for _ in range(rng.randrange(1, 4))]
        )
    return SetVal(
        [random_value(rng, max_depth - 1) for _ in range(rng.randrange(0, 4))]
    )


def reference_metadata(value: Value) -> tuple:
    """(depth, size, atoms) recomputed by plain recursion."""
    if isinstance(value, Atom):
        return 0, 1, frozenset((value,))
    if isinstance(value, Tup):
        children = list(value.items)
    elif isinstance(value, SetVal):
        children = list(value.items)
        if not children:
            return 1, 1, frozenset()
    elif isinstance(value, NamedTup):
        children = [item for _, item in value.fields]
    else:
        return 0, 1, frozenset()
    parts = [reference_metadata(child) for child in children]
    depth = max((d for d, _, _ in parts), default=0)
    if isinstance(value, SetVal):
        depth += 1
    size = 1 + sum(s for _, s, _ in parts)
    atoms = frozenset().union(*(a for _, _, a in parts)) if parts else frozenset()
    return depth, size, atoms


class TestCanonKeyEquality:
    def test_equal_iff_equal_canon_keys(self):
        rng = random.Random(7)
        values = [random_value(rng) for _ in range(120)]
        for left in values:
            for right in values:
                assert (left == right) == (left.canon_key() == right.canon_key())

    def test_canon_key_module_alias(self):
        value = SetVal([Atom("a"), Tup([Atom("b"), Atom("c")])])
        assert canon_key(value) == value.canon_key()

    def test_rebuilt_value_same_key(self):
        rng = random.Random(11)
        for _ in range(40):
            value = random_value(rng)
            rebuilt = pickle.loads(pickle.dumps(value))
            assert rebuilt == value
            assert rebuilt.canon_key() == value.canon_key()
            assert rebuilt.struct_hash == value.struct_hash


class TestStructuralHash:
    def test_equal_values_equal_hashes(self):
        rng = random.Random(13)
        values = [random_value(rng) for _ in range(120)]
        for left in values:
            for right in values:
                if left == right:
                    assert left.struct_hash == right.struct_hash

    def test_hash_is_order_independent_for_sets(self):
        forward = SetVal([Atom("a"), Atom("b"), Atom("c")])
        backward = SetVal([Atom("c"), Atom("b"), Atom("a")])
        assert forward.struct_hash == backward.struct_hash

    def test_hash_is_order_dependent_for_tuples(self):
        assert (
            Tup([Atom("a"), Atom("b")]).struct_hash
            != Tup([Atom("b"), Atom("a")]).struct_hash
        )

    def test_collisions_do_not_change_equality(self):
        # Equality must stay structural even when hashes collide.  We
        # can't force a 64-bit collision, so simulate one: values whose
        # struct_hash fields agree modulo a tiny bucket count land in
        # the same bucket of any hash-keyed index, and must still
        # compare unequal unless structurally equal.
        rng = random.Random(17)
        values = [random_value(rng) for _ in range(200)]
        buckets: dict = {}
        for value in values:
            buckets.setdefault(value.struct_hash % 7, []).append(value)
        checked = 0
        for bucket in buckets.values():
            for left in bucket:
                for right in bucket:
                    checked += 1
                    if left.struct_hash == right.struct_hash and left != right:
                        # A genuine (simulated or real) collision:
                        # equality still distinguishes the two.
                        assert left.canon_key() != right.canon_key()
                    if left == right:
                        assert left.canon_key() == right.canon_key()
        assert checked > 0

    def test_hash_fits_64_bits(self):
        rng = random.Random(19)
        for _ in range(60):
            value = random_value(rng)
            assert 0 <= value.struct_hash < (1 << 64)


class TestCachedKernels:
    def test_depth_size_atoms_match_reference(self):
        rng = random.Random(23)
        for _ in range(80):
            value = random_value(rng)
            depth, size, atoms = reference_metadata(value)
            assert value.depth == depth == set_height(value)
            assert value.size == size == value_size(value)
            assert value.atoms == atoms == adom(value)

    def test_top_flag(self):
        assert TOP.has_top
        assert not BOTTOM.has_top
        assert not Atom("a").has_top
        assert SetVal([Tup([Atom("a"), TOP])]).has_top
        assert not SetVal([Tup([Atom("a"), Atom("b")])]).has_top
        assert NamedTup({"A": TOP}).has_top

    def test_atoms_are_shared_not_copied(self):
        inner = SetVal([Atom("a"), Atom("b")])
        outer = SetVal([inner])
        # Single-child unions reuse the child's frozenset.
        assert outer.atoms is inner.atoms


class TestPickleRoundTrips:
    CASES = [
        Atom("a"),
        Tup([Atom("a"), Atom("b")]),
        SetVal([]),
        SetVal([Atom("b"), SetVal([Atom("a")]), Tup([Atom("c")])]),
        NamedTup({"A": Atom("a"), "B": SetVal([Atom("b")])}),
        BOTTOM,
        TOP,
        SetVal([Tup([Atom("x"), TOP]), BOTTOM]),
    ]

    @pytest.mark.parametrize("value", CASES, ids=lambda v: type(v).__name__)
    def test_without_interning(self, value):
        intern.disable_interning()
        rebuilt = pickle.loads(pickle.dumps(value))
        assert rebuilt == value
        assert rebuilt.canon_key() == value.canon_key()
        assert rebuilt.struct_hash == value.struct_hash
        assert rebuilt.depth == value.depth
        assert rebuilt.size == value.size
        assert rebuilt.atoms == value.atoms
        assert rebuilt.has_top == value.has_top

    @pytest.mark.parametrize("value", CASES, ids=lambda v: type(v).__name__)
    def test_with_interning(self, value):
        with intern.interned():
            rebuilt = pickle.loads(pickle.dumps(value))
            assert rebuilt == value
            assert rebuilt.canon_key() == value.canon_key()
            assert rebuilt.struct_hash == value.struct_hash
            assert rebuilt.depth == value.depth
            assert rebuilt.size == value.size
            assert rebuilt.atoms == value.atoms
            assert rebuilt.has_top == value.has_top

    def test_interned_roundtrip_is_identity(self):
        with intern.interned():
            value = SetVal([Tup([Atom("a"), Atom("b")]), Atom("c")])
            rebuilt = pickle.loads(pickle.dumps(value))
            # Unpickling rebuilds via __new__, so the interner returns
            # the already-constructed instance.
            assert rebuilt is value


class TestCachedSortedMembers:
    def test_iteration_matches_sorted_members(self):
        rng = random.Random(29)
        for _ in range(40):
            value = random_value(rng)
            if not isinstance(value, SetVal):
                value = SetVal([value, Atom("z")])
            members = value.sorted_members()
            assert tuple(value) == members
            assert members == tuple(
                sorted(value.items, key=lambda item: item.canon_key())
            )

    def test_repr_uses_cached_order(self):
        forward = SetVal([Atom("a"), Atom("b"), Atom("c")])
        backward = SetVal([Atom("c"), Atom("b"), Atom("a")])
        assert repr(forward) == repr(backward)
        assert str(forward) == str(backward)

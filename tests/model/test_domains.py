"""Unit tests for constructive domains and the hyper-exponential ladder."""

import pytest

from repro.budget import Budget
from repro.errors import BudgetExceeded, EvaluationError
from repro.model.domains import cons, cons_obj_bounded, cons_size, hyp
from repro.model.types import OBJ, SetType, parse_type
from repro.model.values import Atom, SetVal, adom, canonical_sort


class TestHyp:
    def test_base(self):
        assert hyp(0, 7) == 7

    def test_tower(self):
        assert hyp(1, 3) == 8
        assert hyp(2, 2) == 16
        assert hyp(3, 1) == 16

    def test_cap(self):
        assert hyp(3, 10, cap=1000) == 1000

    def test_exact_when_uncapped(self):
        assert hyp(2, 3) == 2**8

    def test_negative_level(self):
        with pytest.raises(EvaluationError):
            hyp(-1, 3)


class TestConsSize:
    def test_atoms(self):
        assert cons_size(parse_type("U"), 5) == 5

    def test_tuple(self):
        assert cons_size(parse_type("[U, U]"), 3) == 9

    def test_set_is_exponential(self):
        assert cons_size(parse_type("{U}"), 4) == 16

    def test_each_nesting_level_is_one_exponential(self):
        # |cons| for {U}, {{U}}, {{{U}}} at n=2: 4, 16, 65536 — the
        # Theorem 2.2 ladder.
        assert cons_size(parse_type("{U}"), 2) == 4
        assert cons_size(parse_type("{{U}}"), 2) == 16
        assert cons_size(parse_type("{{{U}}}"), 2) == 65536

    def test_cap(self):
        assert cons_size(parse_type("{{{U}}}"), 4, cap=10**6) == 10**6

    def test_obj_is_infinite(self):
        with pytest.raises(EvaluationError):
            cons_size(OBJ, 3)


class TestConsEnumeration:
    def test_matches_size(self):
        atoms = [Atom(i) for i in range(3)]
        for text in ["U", "{U}", "[U, U]", "{[U, U]}"]:
            rtype = parse_type(text)
            values = list(cons(rtype, atoms))
            assert len(values) == cons_size(rtype, 3)
            assert len(set(values)) == len(values)

    def test_members_have_right_type(self):
        rtype = parse_type("{[U, U]}")
        for value in cons(rtype, [Atom(0), Atom(1)]):
            assert rtype.matches(value)

    def test_members_use_only_given_atoms(self):
        atoms = frozenset([Atom(0), Atom(1)])
        for value in cons(parse_type("{U}"), atoms):
            assert adom(value) <= atoms

    def test_rejects_obj(self):
        with pytest.raises(EvaluationError):
            list(cons(SetType(OBJ), [Atom(0)]))

    def test_budget_charged(self):
        budget = Budget(objects=3)
        with pytest.raises(BudgetExceeded):
            list(cons(parse_type("{U}"), [Atom(0), Atom(1)], budget))

    def test_deterministic(self):
        atoms = [Atom(2), Atom(0), Atom(1)]
        first = list(cons(parse_type("{U}"), atoms))
        second = list(cons(parse_type("{U}"), list(reversed(atoms))))
        assert first == second


class TestConsObjBounded:
    def test_distinct_and_bounded(self):
        values = cons_obj_bounded([Atom("a")], 25)
        assert len(values) == 25
        assert len(set(values)) == 25

    def test_atoms_included(self):
        values = cons_obj_bounded([Atom("a"), Atom("b")], 10)
        assert Atom("a") in values and Atom("b") in values

    def test_only_given_atoms(self):
        atoms = frozenset([Atom("a")])
        for value in cons_obj_bounded([Atom("a")], 30):
            assert adom(value) <= atoms

    def test_empty_atom_set_still_yields_sets(self):
        # cons_Obj(∅) contains ∅, {∅}, ... — pure set objects.
        values = cons_obj_bounded([], 5)
        assert SetVal([]) in values
        assert len(values) == 5

    def test_height_cap(self):
        from repro.model.values import set_height

        values = cons_obj_bounded([Atom("a")], 40, max_height=1)
        assert all(set_height(v) <= 1 for v in values)

    def test_canonical_output(self):
        values = cons_obj_bounded([Atom("a")], 12)
        assert values == canonical_sort(values)

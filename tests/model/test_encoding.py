"""Unit tests for tape encodings of flat instances."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.model.encoding import (
    BLANK,
    all_database_encodings,
    canonical_atom_order,
    decode_database,
    decode_instance,
    encode_database,
    encode_row,
)
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup


def _binary(rows):
    return Database(Schema({"R": parse_type("[U, U]")}), {"R": rows})


class TestEncodeRow:
    def test_atom_row(self):
        assert encode_row(Atom("a")) == [Atom("a")]

    def test_tuple_row(self):
        assert encode_row(Tup([Atom("a"), Atom("b")])) == [
            "[", Atom("a"), Atom("b"), "]",
        ]

    def test_non_flat_rejected(self):
        with pytest.raises(EvaluationError):
            encode_row(Tup([SetVal([Atom("a")])]))
        with pytest.raises(EvaluationError):
            encode_row(SetVal([Atom("a")]))


class TestRoundTrips:
    def test_binary_roundtrip(self):
        database = _binary({(1, 2), (3, 4)})
        order = canonical_atom_order(database)
        symbols = encode_database(database, order)
        assert decode_database(symbols, database.schema) == database

    def test_unary_roundtrip(self):
        schema = Schema({"R": parse_type("U")})
        database = Database(schema, {"R": {1, 2, 3}})
        symbols = encode_database(database, canonical_atom_order(database))
        assert decode_database(symbols, schema) == database

    def test_multi_predicate_roundtrip(self):
        schema = Schema({"R": parse_type("[U, U]"), "S": parse_type("U")})
        database = Database(schema, {"R": {(1, 2)}, "S": {3}})
        symbols = encode_database(database, canonical_atom_order(database))
        assert decode_database(symbols, schema) == database

    def test_empty_instances(self):
        database = _binary(set())
        symbols = encode_database(database, ())
        assert symbols == ["(", ")"]
        assert decode_database(symbols, database.schema) == database

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=6))
    @settings(max_examples=60)
    def test_roundtrip_random(self, rows):
        database = _binary(rows)
        order = canonical_atom_order(database)
        symbols = encode_database(database, order)
        assert decode_database(symbols, database.schema) == database


class TestDecoding:
    def test_blanks_skipped_everywhere(self):
        symbols = ["(", BLANK, "[", Atom(1), BLANK, Atom(2), "]", BLANK, ")"]
        decoded = decode_instance(symbols, parse_type("[U, U]"))
        assert decoded == SetVal([Tup([Atom(1), Atom(2)])])

    def test_commas_tolerated(self):
        symbols = ["(", "[", Atom(1), ",", Atom(2), "]", ",", ")"]
        decoded = decode_instance(symbols, parse_type("[U, U]"))
        assert len(decoded) == 1

    def test_type_mismatch_rejected(self):
        symbols = ["(", "[", Atom(1), Atom(2), "]", ")"]
        with pytest.raises(EvaluationError):
            decode_instance(symbols, parse_type("[U, U, U]"))

    def test_malformed_rejected(self):
        for symbols in (
            ["(", "["],  # truncated
            ["[", Atom(1), "]"],  # no instance parens
            ["(", ")", Atom(1)],  # trailing garbage
            ["(", "[", "]", ")"],  # empty tuple
        ):
            with pytest.raises(EvaluationError):
                decode_instance(symbols, parse_type("[U, U]"))


class TestOrderings:
    def test_encoding_depends_on_order(self):
        database = _binary({(1, 2), (2, 1)})
        orders = list(all_database_encodings(database))
        encodings = {tuple(repr(s) for s in enc) for _, enc in orders}
        assert len(encodings) > 1  # different orders, different listings

    def test_decoded_value_does_not(self):
        database = _binary({(1, 2), (2, 1)})
        for _, encoding in all_database_encodings(database):
            assert decode_database(encoding, database.schema) == database

    def test_limit(self):
        database = _binary({(1, 2), (3, 4)})
        assert len(list(all_database_encodings(database, limit=3))) == 3

    def test_non_flat_rejected(self):
        schema = Schema({"R": parse_type("{U}")})
        database = Database(schema, {"R": [SetVal([Atom(1)])]})
        with pytest.raises(EvaluationError):
            encode_database(database, ())

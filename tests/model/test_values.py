"""Unit tests for the value universe Obj."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TypeCheckError
from repro.model.values import (
    Atom,
    BOTTOM,
    Bottom,
    NamedTup,
    SetVal,
    TOP,
    Top,
    Tup,
    adom,
    canon_key,
    canonical_sort,
    contains_any,
    obj,
    set_height,
    value_size,
)


# ---------------------------------------------------------------------------
# Construction and identity.
# ---------------------------------------------------------------------------


class TestAtom:
    def test_equality_by_label(self):
        assert Atom("a") == Atom("a")
        assert Atom("a") != Atom("b")
        assert Atom(1) != Atom("1")

    def test_hashable(self):
        assert len({Atom("a"), Atom("a"), Atom("b")}) == 2

    def test_label_types(self):
        with pytest.raises(TypeCheckError):
            Atom(3.14)
        with pytest.raises(TypeCheckError):
            Atom(True)
        with pytest.raises(TypeCheckError):
            Atom(None)

    def test_immutable(self):
        atom = Atom("a")
        with pytest.raises(AttributeError):
            atom.label = "b"

    def test_str(self):
        assert str(Atom("hello")) == "hello"
        assert str(Atom(42)) == "42"


class TestTup:
    def test_needs_items(self):
        with pytest.raises(TypeCheckError):
            Tup([])

    def test_items_must_be_values(self):
        with pytest.raises(TypeCheckError):
            Tup(["raw string"])

    def test_equality_is_positional(self):
        assert Tup([Atom(1), Atom(2)]) == Tup([Atom(1), Atom(2)])
        assert Tup([Atom(1), Atom(2)]) != Tup([Atom(2), Atom(1)])

    def test_len_and_index(self):
        t = Tup([Atom("x"), Atom("y")])
        assert len(t) == 2
        assert t[0] == Atom("x")
        assert list(t) == [Atom("x"), Atom("y")]

    def test_arity_one_tuple_differs_from_atom(self):
        assert Tup([Atom("x")]) != Atom("x")


class TestSetVal:
    def test_empty_allowed(self):
        assert len(SetVal()) == 0

    def test_duplicates_collapse(self):
        assert len(SetVal([Atom(1), Atom(1), Atom(2)])) == 2

    def test_unordered_equality(self):
        assert SetVal([Atom(1), Atom(2)]) == SetVal([Atom(2), Atom(1)])

    def test_membership(self):
        s = SetVal([Atom(1)])
        assert Atom(1) in s
        assert Atom(2) not in s

    def test_heterogeneous_members(self):
        # The whole point of the paper: no type restriction on members.
        mixed = SetVal([Atom(1), Tup([Atom(1), Atom(2)]), SetVal([Atom(3)])])
        assert len(mixed) == 3

    def test_iteration_is_canonical(self):
        s = SetVal([Atom("b"), Atom("a"), Atom("c")])
        assert [str(x) for x in s] == ["a", "b", "c"]

    def test_sets_of_sets(self):
        inner = SetVal([Atom(1)])
        outer = SetVal([inner, SetVal([])])
        assert inner in outer
        assert SetVal([]) in outer


class TestNamedTupAndLatticePoints:
    def test_named_fields_sorted(self):
        t1 = NamedTup({"B": Atom(2), "A": Atom(1)})
        t2 = NamedTup({"A": Atom(1), "B": Atom(2)})
        assert t1 == t2
        assert t1.attributes() == ("A", "B")

    def test_get(self):
        t = NamedTup({"A": Atom(1)})
        assert t.get("A") == Atom(1)
        assert t.get("Z") is None

    def test_bottom_top_singletons(self):
        assert Bottom() == BOTTOM
        assert Top() == TOP
        assert BOTTOM != TOP


# ---------------------------------------------------------------------------
# The canonical total order.
# ---------------------------------------------------------------------------


def _value_strategy(max_depth=3):
    atoms = st.one_of(
        st.integers(min_value=0, max_value=5).map(Atom),
        st.sampled_from(["a", "b", "c"]).map(Atom),
    )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(Tup),
            st.lists(children, min_size=0, max_size=3).map(SetVal),
        ),
        max_leaves=8,
    )


class TestCanonicalOrder:
    def test_kind_ranks(self):
        assert BOTTOM < Atom(0) < Tup([Atom(0)]) < SetVal([]) < TOP
        assert Atom(0) < NamedTup({"A": Atom(0)}) < SetVal([])

    def test_ints_before_strings(self):
        assert Atom(99) < Atom("a")

    @given(_value_strategy(), _value_strategy())
    @settings(max_examples=200)
    def test_total_and_consistent(self, left, right):
        # Exactly one of <, ==, > holds.
        relations = [left < right, left == right, right < left]
        assert sum(bool(r) for r in relations) == 1

    @given(_value_strategy(), _value_strategy())
    @settings(max_examples=200)
    def test_key_agrees_with_equality(self, left, right):
        assert (canon_key(left) == canon_key(right)) == (left == right)

    @given(st.lists(_value_strategy(), max_size=6))
    @settings(max_examples=100)
    def test_sort_is_deterministic(self, values):
        assert canonical_sort(values) == canonical_sort(list(reversed(values)))


# ---------------------------------------------------------------------------
# Structural measures.
# ---------------------------------------------------------------------------


class TestMeasures:
    def test_adom_collects_atoms(self):
        value = SetVal([Tup([Atom(1), SetVal([Atom(2)])]), Atom(3)])
        assert adom(value) == frozenset({Atom(1), Atom(2), Atom(3)})

    def test_adom_ignores_lattice_points(self):
        assert adom(BOTTOM) == frozenset()
        assert adom(NamedTup({"A": Atom(5)})) == frozenset({Atom(5)})

    def test_set_height(self):
        assert set_height(Atom(1)) == 0
        assert set_height(Tup([Atom(1)])) == 0
        assert set_height(SetVal([])) == 1
        assert set_height(SetVal([SetVal([Atom(1)])])) == 2
        assert set_height(Tup([SetVal([Atom(1)]), Atom(2)])) == 1

    def test_value_size(self):
        assert value_size(Atom(1)) == 1
        assert value_size(Tup([Atom(1), Atom(2)])) == 3
        assert value_size(SetVal([Atom(1), Atom(2)])) == 3

    def test_contains_any(self):
        marker = Atom("marker")
        value = SetVal([Tup([Atom(1), marker])])
        assert contains_any(value, {marker})
        assert not contains_any(value, {Atom("other")})

    @given(_value_strategy())
    @settings(max_examples=100)
    def test_height_bounded_by_size(self, value):
        assert set_height(value) <= value_size(value)


# ---------------------------------------------------------------------------
# Coercion from plain Python.
# ---------------------------------------------------------------------------


class TestObjCoercion:
    def test_scalars(self):
        assert obj("a") == Atom("a")
        assert obj(3) == Atom(3)

    def test_containers(self):
        assert obj((1, 2)) == Tup([Atom(1), Atom(2)])
        assert obj({1, 2}) == SetVal([Atom(1), Atom(2)])
        assert obj({"A": 1}) == NamedTup({"A": Atom(1)})

    def test_nested(self):
        value = obj({(1, 2), (3, 4)})
        assert value == SetVal([Tup([Atom(1), Atom(2)]), Tup([Atom(3), Atom(4)])])

    def test_passthrough(self):
        atom = Atom("x")
        assert obj(atom) is atom

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeCheckError):
            obj(True)
        with pytest.raises(TypeCheckError):
            obj(1.5)

"""Unit tests for schemas and database instances."""

import pytest

from repro.errors import SchemaError, TypeCheckError
from repro.model.schema import Database, Schema, adom, instance_of
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup


class TestSchema:
    def test_names_ordered(self):
        schema = Schema([("B", parse_type("U")), ("A", parse_type("U"))])
        assert schema.names() == ("B", "A")

    def test_distinct_names(self):
        with pytest.raises(SchemaError):
            Schema([("R", parse_type("U")), ("R", parse_type("U"))])

    def test_bad_entries(self):
        with pytest.raises(SchemaError):
            Schema({"": parse_type("U")})
        with pytest.raises(SchemaError):
            Schema({"R": "not a type"})

    def test_rtype_lookup(self):
        schema = Schema({"R": parse_type("[U, U]")})
        assert schema.rtype("R") == parse_type("[U, U]")
        with pytest.raises(SchemaError):
            schema.rtype("missing")

    def test_arity(self):
        schema = Schema({"R": parse_type("[U, U, U]"), "S": parse_type("U")})
        assert schema.arity("R") == 3
        assert schema.arity("S") == 1

    def test_flatness(self):
        assert Schema({"R": parse_type("[U, U]")}).is_flat()
        assert not Schema({"R": parse_type("{U}")}).is_flat()
        assert not Schema({"R": parse_type("Obj")}).is_flat()

    def test_contains_iter_len(self):
        schema = Schema({"R": parse_type("U"), "S": parse_type("U")})
        assert "R" in schema and "T" not in schema
        assert len(schema) == 2
        assert [name for name, _ in schema] == ["R", "S"]


class TestDatabase:
    def test_coercion_from_plain_data(self, binary_db):
        assert Tup([Atom(1), Atom(2)]) in binary_db["R"]

    def test_missing_instance(self):
        schema = Schema({"R": parse_type("U"), "S": parse_type("U")})
        with pytest.raises(SchemaError):
            Database(schema, {"R": {1}})

    def test_extra_instance(self):
        schema = Schema({"R": parse_type("U")})
        with pytest.raises(SchemaError):
            Database(schema, {"R": {1}, "X": {2}})

    def test_type_validation(self):
        schema = Schema({"R": parse_type("[U, U]")})
        with pytest.raises(TypeCheckError):
            Database(schema, {"R": {(1, 2, 3)}})
        with pytest.raises(TypeCheckError):
            Database(schema, {"R": {1}})

    def test_untyped_instance_accepts_mixed(self):
        schema = Schema({"R": parse_type("{Obj}")})
        database = Database(schema, {"R": [SetVal([Atom(1), Tup([Atom(1), Atom(2)])])]})
        assert len(database["R"]) == 1

    def test_adom(self, binary_db):
        assert binary_db.adom() == frozenset({Atom(1), Atom(2), Atom(3)})

    def test_with_instance(self, binary_db):
        updated = binary_db.with_instance("R", {(9, 9)})
        assert updated["R"] == SetVal([Tup([Atom(9), Atom(9)])])
        # Original untouched (immutability).
        assert Tup([Atom(9), Atom(9)]) not in binary_db["R"]

    def test_with_instance_unknown(self, binary_db):
        with pytest.raises(SchemaError):
            binary_db.with_instance("X", {(1, 1)})

    def test_equality_and_hash(self):
        schema = Schema({"R": parse_type("U")})
        a = Database(schema, {"R": {1, 2}})
        b = Database(schema, {"R": {2, 1}})
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_predicate_lookup(self, unary_db):
        with pytest.raises(SchemaError):
            unary_db["missing"]


class TestHelpers:
    def test_instance_of(self):
        inst = instance_of([(1, 2), (3, 4)])
        assert len(inst) == 2

    def test_adom_overloads(self, binary_db):
        assert adom(binary_db) == binary_db.adom()
        assert adom(Tup([Atom(1)])) == frozenset({Atom(1)})
        with pytest.raises(SchemaError):
            adom("not a thing")

"""Unit tests for types and rtypes."""

import pytest

from repro.errors import TypeCheckError
from repro.model.types import (
    OBJ,
    SetType,
    TupleType,
    U,
    flat_relation_type,
    infer_rtype,
    lub_rtype,
    nested_set_type,
    parse_type,
)
from repro.model.values import Atom, BOTTOM, NamedTup, SetVal, Tup


class TestParsing:
    def test_atoms(self):
        assert parse_type("U") == U
        assert parse_type("Obj") == OBJ

    def test_nested(self):
        parsed = parse_type("{[U, {U}]}")
        assert parsed == SetType(TupleType([U, SetType(U)]))

    def test_whitespace_tolerant(self):
        assert parse_type(" [ U , U ] ") == TupleType([U, U])

    def test_repr_round_trip(self):
        for text in ["U", "Obj", "{U}", "[U, U]", "{[U, {Obj}]}"]:
            assert parse_type(repr(parse_type(text))) == parse_type(text)

    def test_errors(self):
        for bad in ["", "X", "{U", "[U,]", "[]", "U junk", "{}"]:
            with pytest.raises(TypeCheckError):
                parse_type(bad)


class TestTypeVsRType:
    def test_is_type(self):
        assert parse_type("{[U, U]}").is_type()
        assert not parse_type("{Obj}").is_type()
        assert not parse_type("[U, Obj]").is_type()

    def test_types_are_proper_subset_of_rtypes(self):
        # Every parsed expression is an rtype; only some are types.
        rtypes = [parse_type(t) for t in ["U", "{U}", "Obj", "{Obj}"]]
        assert [r.is_type() for r in rtypes] == [True, True, False, False]

    def test_overlapping_domains(self):
        # Unlike types, two distinct rtypes can share members (paper §4).
        atom = Atom("a")
        assert U.matches(atom) and OBJ.matches(atom)
        assert U != OBJ


class TestFlatness:
    def test_flat(self):
        assert parse_type("U").is_flat()
        assert parse_type("[U, U]").is_flat()
        assert not parse_type("{U}").is_flat()
        assert not parse_type("Obj").is_flat()
        assert not parse_type("[U, {U}]").is_flat()


class TestSetHeight:
    def test_heights(self):
        assert parse_type("U").set_height() == 0
        assert parse_type("{U}").set_height() == 1
        assert parse_type("{{U}}").set_height() == 2
        assert parse_type("[{U}, U]").set_height() == 1

    def test_obj_is_unbounded(self):
        assert parse_type("Obj").set_height() == -1
        assert parse_type("{Obj}").set_height() == -1


class TestMatching:
    def test_atom_type(self):
        assert U.matches(Atom(1))
        assert not U.matches(Tup([Atom(1)]))

    def test_set_type(self):
        t = parse_type("{U}")
        assert t.matches(SetVal([Atom(1), Atom(2)]))
        assert t.matches(SetVal([]))
        assert not t.matches(SetVal([Tup([Atom(1)])]))

    def test_tuple_type(self):
        t = parse_type("[U, U]")
        assert t.matches(Tup([Atom(1), Atom(2)]))
        assert not t.matches(Tup([Atom(1)]))
        assert not t.matches(Atom(1))

    def test_obj_matches_heterogeneous(self):
        mixed = SetVal([Atom(1), Tup([Atom(1), Atom(2)])])
        assert parse_type("{Obj}").matches(mixed)
        assert parse_type("Obj").matches(mixed)

    def test_obj_rejects_bk_values(self):
        assert not OBJ.matches(BOTTOM)
        assert not OBJ.matches(NamedTup({"A": Atom(1)}))
        assert not OBJ.matches(SetVal([BOTTOM]))


class TestHelpers:
    def test_flat_relation_type(self):
        assert flat_relation_type(2) == parse_type("{[U, U]}")
        with pytest.raises(TypeCheckError):
            flat_relation_type(0)

    def test_nested_set_type(self):
        assert nested_set_type(0) == U
        assert nested_set_type(3) == parse_type("{{{U}}}")
        with pytest.raises(TypeCheckError):
            nested_set_type(-1)

    def test_infer_rtype(self):
        assert infer_rtype(Atom(1)) == U
        assert infer_rtype(Tup([Atom(1), Atom(2)])) == TupleType([U, U])
        assert infer_rtype(SetVal([Atom(1)])) == SetType(U)
        # Heterogeneous sets infer as {Obj}.
        mixed = SetVal([Atom(1), Tup([Atom(1), Atom(2)])])
        assert infer_rtype(mixed) == SetType(OBJ)
        assert infer_rtype(SetVal([])) == SetType(OBJ)

    def test_lub_rtype(self):
        assert lub_rtype(U, U) == U
        assert lub_rtype(U, OBJ) == OBJ
        assert lub_rtype(parse_type("{U}"), parse_type("{U}")) == parse_type("{U}")
        assert lub_rtype(parse_type("{U}"), parse_type("{[U, U]}")) == parse_type(
            "{Obj}"
        )
        assert lub_rtype(parse_type("[U, U]"), parse_type("[U, U, U]")) == OBJ


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert parse_type("{[U, U]}") == parse_type("{[U, U]}")
        assert hash(parse_type("{U}")) == hash(parse_type("{U}"))

    def test_immutability(self):
        t = parse_type("{U}")
        with pytest.raises(AttributeError):
            t.element = OBJ

"""Unit tests for permutations, C-genericity, and domain preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError, UNDEFINED
from repro.model.genericity import (
    Permutation,
    check_domain_preserving,
    check_generic,
    permutations_fixing,
)
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup


def _db(rows):
    return Database(Schema({"R": parse_type("[U, U]")}), {"R": rows})


class TestPermutation:
    def test_swap(self):
        perm = Permutation.swap(Atom("a"), Atom("b"))
        assert perm(Atom("a")) == Atom("b")
        assert perm(Atom("c")) == Atom("c")

    def test_must_be_bijective(self):
        with pytest.raises(EvaluationError):
            Permutation({Atom("a"): Atom("c"), Atom("b"): Atom("c")})

    def test_must_permute_support(self):
        # a -> b without b -> a is not a finitely-supported permutation.
        with pytest.raises(EvaluationError):
            Permutation({Atom("a"): Atom("b")})

    def test_cycle(self):
        perm = Permutation.from_cycle([Atom(1), Atom(2), Atom(3)])
        assert perm(Atom(1)) == Atom(2)
        assert perm(Atom(3)) == Atom(1)

    def test_inverse(self):
        perm = Permutation.from_cycle([Atom(1), Atom(2), Atom(3)])
        inverse = perm.inverse()
        for atom in [Atom(1), Atom(2), Atom(3), Atom(9)]:
            assert inverse(perm(atom)) == atom

    def test_applies_deeply(self):
        perm = Permutation.swap(Atom(1), Atom(2))
        value = SetVal([Tup([Atom(1), SetVal([Atom(2)])])])
        assert perm(value) == SetVal([Tup([Atom(2), SetVal([Atom(1)])])])

    def test_applies_to_database(self):
        perm = Permutation.swap(Atom(1), Atom(2))
        permuted = perm(_db({(1, 2)}))
        assert Tup([Atom(2), Atom(1)]) in permuted["R"]

    def test_fixes(self):
        perm = Permutation.swap(Atom(1), Atom(2))
        assert perm.fixes([Atom(3)])
        assert not perm.fixes([Atom(1)])

    @given(st.permutations(list(range(4))))
    @settings(max_examples=50)
    def test_is_homomorphism_on_sets(self, image):
        mapping = {Atom(i): Atom(j) for i, j in enumerate(image)}
        perm = Permutation(mapping)
        left = SetVal([Atom(0), Atom(1)])
        right = SetVal([Atom(2), Atom(3)])
        union = SetVal(set(left.items) | set(right.items))
        assert perm(union) == SetVal(set(perm(left).items) | set(perm(right).items))


class TestPermutationsFixing:
    def test_counts(self):
        perms = permutations_fixing([Atom(i) for i in range(3)])
        assert len(perms) == 6

    def test_respects_constants(self):
        perms = permutations_fixing(
            [Atom(i) for i in range(3)], constants=[Atom(0)]
        )
        assert len(perms) == 2
        assert all(p.fixes([Atom(0)]) for p in perms)

    def test_limit(self):
        perms = permutations_fixing([Atom(i) for i in range(5)], limit=10)
        assert len(perms) == 10


class TestCheckGeneric:
    def test_generic_query_passes(self):
        def identity(db):
            return db["R"]

        assert check_generic(identity, [_db({(1, 2), (2, 3)})])

    def test_non_generic_query_caught(self):
        special = Atom(1)

        def leaky(db):
            # Singles out a specific atom: not generic.
            return SetVal([t for t in db["R"].items if t.items[0] == special])

        with pytest.raises(EvaluationError):
            check_generic(leaky, [_db({(1, 2), (2, 3)})])

    def test_c_generic_with_constants(self):
        special = Atom(1)

        def leaky(db):
            return SetVal([t for t in db["R"].items if t.items[0] == special])

        # Declaring 1 a constant makes the same query C-generic.
        assert check_generic(leaky, [_db({(1, 2), (2, 3)})], constants=[special])

    def test_undefined_must_be_stable(self):
        def flaky(db):
            return UNDEFINED if Atom(1) in db.adom() else db["R"]

        with pytest.raises(EvaluationError):
            check_generic(flaky, [_db({(1, 2)})])


class TestDomainPreservation:
    def test_preserving(self):
        assert check_domain_preserving(lambda db: db["R"], [_db({(1, 2)})])

    def test_inventing_caught(self):
        def inventor(db):
            return SetVal([Atom("brand-new")])

        with pytest.raises(EvaluationError):
            check_domain_preserving(inventor, [_db({(1, 2)})])

    def test_constants_allowed(self):
        marker = Atom("c")

        def with_constant(db):
            return SetVal([marker])

        assert check_domain_preserving(
            with_constant, [_db({(1, 2)})], constants=[marker]
        )

    def test_undefined_ok(self):
        assert check_domain_preserving(lambda db: UNDEFINED, [_db({(1, 2)})])

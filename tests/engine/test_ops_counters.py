"""Index-counter contracts of the persistent-index machinery.

The cost-based join path keeps one incrementally-maintained index per
(scan, spec) across all fixpoint rounds; these tests pin that down via
the :class:`~repro.engine.ops.OpStats` counters EXPLAIN renders:

* ``index_builds`` stays *flat* across rounds — every distinct spec is
  built exactly once per scan, no matter how many rounds probe it;
* :class:`~repro.engine.ops.Scan.copy` starts index-less and rebuilds
  lazily (correctly), without disturbing the original's buckets;
* incremental maintenance: facts added after a build land in the
  right buckets without another build.
"""

from repro.budget import Budget
from repro.deductive.col import Interp
from repro.deductive.datalog import transitive_closure_datalog
from repro.engine.ops import FIRST_COORDINATE, Scan, TupleKey
from repro.engine.seminaive import seminaive_fixpoint
from repro.model.values import Atom, Tup
from repro.workloads import chain_graph


def _unlimited() -> Budget:
    return Budget(steps=None, objects=None, iterations=None, facts=None)


def _pair(a: str, b: str) -> Tup:
    return Tup([Atom(a), Atom(b)])


class TestIndexBuildsFlatAcrossRounds:
    def test_tc_fixpoint_builds_each_index_once(self):
        # chain(24) TC runs ~24 semi-naive rounds; every round probes
        # the same persistent indexes.  One build per distinct spec —
        # if any round rebuilt, builds would exceed the spec count.
        interp = Interp.from_database(chain_graph(24))
        program = transitive_closure_datalog()
        seminaive_fixpoint(program.rules, interp, _unlimited())
        for name, scan in interp.preds.items():
            assert scan.stats.index_builds == len(scan._indexes), name

    def test_probing_again_never_rebuilds(self):
        scan = Scan("R", [_pair("a", "b"), _pair("b", "c")])
        spec = TupleKey(2, (0,))
        for _ in range(5):
            scan.probe(spec, (Atom("a"),))
        assert scan.stats.index_builds == 1
        assert scan.stats.probes == 5


class TestIncrementalMaintenance:
    def test_add_after_build_lands_in_buckets(self):
        scan = Scan("R", [_pair("a", "b")])
        spec = TupleKey(2, (0,))
        assert scan.probe(spec, (Atom("a"),)) == {_pair("a", "b")}
        scan.add(_pair("a", "c"))
        scan.add(_pair("d", "e"))
        assert scan.probe(spec, (Atom("a"),)) == {
            _pair("a", "b"),
            _pair("a", "c"),
        }
        assert scan.probe(spec, (Atom("d"),)) == {_pair("d", "e")}
        # Still the one original build: maintenance is incremental.
        assert scan.stats.index_builds == 1

    def test_discard_after_build_empties_buckets(self):
        scan = Scan("R", [_pair("a", "b")])
        scan.index(FIRST_COORDINATE)
        scan.discard(_pair("a", "b"))
        assert scan.probe(FIRST_COORDINATE, Atom("a")) == frozenset()
        assert scan.stats.index_builds == 1


class TestScanCopy:
    def test_copy_starts_indexless_and_rebuilds(self):
        scan = Scan("R", [_pair("a", "b"), _pair("b", "c")])
        spec = TupleKey(2, (1,))
        scan.index(spec)
        dup = scan.copy()
        assert not dup.has_index(spec)
        # The rebuilt index answers identically...
        assert dup.probe(spec, (Atom("b"),)) == {_pair("a", "b")}
        assert dup.has_index(spec)
        # ...and the counter records the rebuild (stats are shared —
        # the copy is the same physical relation observed again).
        assert scan.stats.index_builds == 2

    def test_copy_is_independent_of_original(self):
        scan = Scan("R", [_pair("a", "b")])
        spec = TupleKey(2, (0,))
        scan.index(spec)
        dup = scan.copy()
        dup.add(_pair("a", "z"))
        assert _pair("a", "z") not in scan
        assert scan.probe(spec, (Atom("a"),)) == {_pair("a", "b")}
        assert dup.probe(spec, (Atom("a"),)) == {
            _pair("a", "b"),
            _pair("a", "z"),
        }

    def test_copy_resets_adaptive_fallback_state(self):
        scan = Scan("R", [_pair("a", "b")])
        scan.fallback_work = 999
        assert scan.copy().fallback_work == 0

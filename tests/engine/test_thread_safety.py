"""Shared engine state under thread contention: intern, LRU, memo.

These hammer the three structures a :class:`repro.serve.QueryService`
shares across its worker pool.  The assertions are consistency
invariants that fail when any lock is missing or too narrow: exact
counter accounting, capacity never overshot, one canonical instance
per key, correct results from concurrent memoized evaluation.
"""

import threading

from repro.engine.cache import LRUCache, MemoCache
from repro.engine.intern import Interner
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup

THREADS = 8


def _hammer(worker, threads=THREADS):
    pool = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in pool)


class TestInternerConcurrency:
    def test_one_canonical_instance_per_key(self):
        interner = Interner(max_entries=None)
        winners = [set() for _ in range(THREADS)]

        def worker(index):
            for round_number in range(500):
                for label in ("a", "b", "c", "d"):
                    key = ("Atom", label)
                    cached = interner.lookup(key)
                    if cached is None:
                        interner.store(key, (label, index, round_number))
                        cached = interner.lookup(key)
                    winners[index].add(id(cached))

        _hammer(worker)
        # However the races went, each key converged on ONE canonical
        # instance, and after convergence every thread observed it.
        assert len(interner) == 4
        canonical = {id(value) for value in interner._table.values()}
        for observed in winners:
            # A thread saw the canonical instance plus at most its own
            # transient losers (first-store races), never corruption.
            assert canonical & observed or not observed

    def test_counters_are_exact(self):
        interner = Interner(max_entries=None)

        def worker(index):
            for _ in range(1_000):
                interner.lookup(("Atom", "x"))

        interner.store(("Atom", "x"), Atom("x"))
        _hammer(worker)
        stats = interner.stats()
        assert stats.hits == THREADS * 1_000
        assert stats.misses == 0

    def test_capacity_is_never_overshot(self):
        interner = Interner(max_entries=16)

        def worker(index):
            for n in range(400):
                key = ("Atom", f"{index}-{n}")
                if interner.lookup(key) is None:
                    interner.store(key, key)

        _hammer(worker)
        assert len(interner) <= 16
        stats = interner.stats()
        # Everything not admitted was counted as a skip.
        assert stats.size + stats.skips == THREADS * 400


class TestLRUCacheConcurrency:
    def test_capacity_and_counters_under_put_storm(self):
        cache = LRUCache(max_entries=32)

        def worker(index):
            for n in range(1_000):
                cache.put((index, n % 64), n)

        _hammer(worker)
        assert len(cache) <= 32
        # Inserts either stay resident or were evicted — nothing lost.
        puts = THREADS * 1_000
        assert cache.stats.evictions <= puts
        assert len(cache) + cache.stats.evictions >= 32

    def test_hit_miss_accounting_is_exact(self):
        cache = LRUCache(max_entries=8)
        for n in range(8):
            cache.put(n, n)

        def worker(index):
            for _ in range(1_000):
                assert cache.get(index % 8) == index % 8

        _hammer(worker)
        assert cache.stats.hits == THREADS * 1_000
        assert cache.stats.misses == 0

    def test_get_put_mix_never_corrupts(self):
        cache = LRUCache(max_entries=4)

        def worker(index):
            for n in range(2_000):
                key = n % 8
                cache.put(key, key)
                value = cache.get(key)
                assert value is None or value == key

        _hammer(worker)
        assert len(cache) <= 4


def _database(rows):
    schema = Schema({"R": parse_type("[U, U]")})
    instance = SetVal(Tup([Atom(a), Atom(b)]) for a, b in rows)
    return Database(schema, {"R": instance})


class _FakeProgram:
    def __repr__(self):
        return "FakeProgram()"


def _project_first(database):
    return SetVal(pair[0] for pair in database["R"])


class TestMemoCacheConcurrency:
    def test_concurrent_hits_and_misses_are_consistent(self):
        memo = MemoCache(max_entries=64)
        program = _FakeProgram()
        databases = [
            _database([("a", "b"), ("b", "c")]),
            _database([("x", "y"), ("y", "z")]),
        ]
        expected = [_project_first(database) for database in databases]
        evaluations = []
        evaluations_lock = threading.Lock()

        def counted(database):
            with evaluations_lock:
                evaluations.append(1)
            return _project_first(database)

        failures = []

        def worker(index):
            for n in range(300):
                which = (index + n) % 2
                result = memo.run(counted, program, databases[which])
                if result != expected[which]:
                    failures.append((index, n, result))

        _hammer(worker)
        assert not failures
        total = THREADS * 300
        stats = memo.stats
        # Every run was either a hit or a miss, and every miss ran fn.
        assert stats.hits + stats.misses == total
        assert len(evaluations) == stats.misses
        # Concurrent first-misses may duplicate work, but only a
        # bounded amount: far fewer evaluations than total runs.
        assert stats.misses <= THREADS * 2
        assert stats.hits >= total - THREADS * 2

    def test_generic_false_bypasses_and_counts(self):
        memo = MemoCache()
        program = _FakeProgram()
        database = _database([("a", "b")])

        def worker(index):
            for _ in range(200):
                memo.run(_project_first, program, database, generic=False)

        _hammer(worker)
        assert memo.stats.bypasses == THREADS * 200
        assert len(memo) == 0

    def test_eviction_respects_capacity_under_threads(self):
        memo = MemoCache(max_entries=4)
        program = _FakeProgram()
        # Chains of different lengths: canonicalisation cannot collapse
        # these (structure differs), so they occupy distinct keys.
        databases = [
            _database([(f"n{i}", f"n{i + 1}") for i in range(length + 1)])
            for length in range(12)
        ]

        def worker(index):
            for n in range(120):
                memo.run(_project_first, program, databases[(index + n) % 12])

        _hammer(worker)
        assert len(memo) <= 4

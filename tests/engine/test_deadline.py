"""Wall-clock deadline budgets, and the runner timeout off main thread.

SIGALRM only arms on the main thread; before this mechanism existed,
``run_suite(..., use_processes=False)`` called from a worker thread
silently ran with *no* timeout at all.  The regression test at the
bottom pins the fix: a burning task in a non-main thread must still
time out, via :class:`~repro.engine.deadline.DeadlineBudget`.
"""

import threading
import time

import pytest

from repro.budget import Budget
from repro.engine.deadline import DeadlineBudget, DeadlineExceeded, with_deadline
from repro.engine.runner import RunTask, run_suite
from repro.errors import BudgetExceeded, is_undefined


def _far_future():
    return time.monotonic() + 3600.0


class TestDeadlineBudget:
    def test_charge_raises_once_deadline_passes(self):
        budget = DeadlineBudget(time.monotonic() - 0.001, 0.001)
        assert budget.expired()
        with pytest.raises(DeadlineExceeded) as exc_info:
            budget.charge("steps")
        assert exc_info.value.seconds == 0.001

    def test_charge_passes_before_deadline(self):
        budget = DeadlineBudget(_far_future(), 3600.0, steps=10)
        budget.charge("steps", 5)
        assert budget.remaining("steps") == 5
        assert not budget.expired()
        assert budget.remaining_seconds() > 3000

    def test_resource_limits_still_enforced(self):
        budget = DeadlineBudget(_far_future(), 3600.0, steps=3)
        budget.charge("steps", 3)
        with pytest.raises(BudgetExceeded):
            budget.charge("steps")

    def test_not_a_budget_exceeded(self):
        # Evaluators catch BudgetExceeded and return ?; a deadline must
        # NOT be swallowed that way — it is an operational abort.
        assert not issubclass(DeadlineExceeded, BudgetExceeded)

    def test_child_carries_the_same_absolute_deadline(self):
        deadline = _far_future()
        parent = DeadlineBudget(deadline, 3600.0, steps=100)
        child = parent.child(steps=10)
        assert isinstance(child, DeadlineBudget)
        assert child.deadline == deadline
        grandchild = child.child()
        assert grandchild.deadline == deadline

    def test_expired_parent_means_expired_children(self):
        parent = DeadlineBudget(time.monotonic() - 0.001, 5.0)
        child = parent.child()
        with pytest.raises(DeadlineExceeded):
            child.charge("steps")


class TestWithDeadline:
    def test_wraps_remaining_allowances(self):
        base = Budget(steps=100)
        base.charge("steps", 40)
        bounded = with_deadline(base, 60.0)
        assert isinstance(bounded, DeadlineBudget)
        assert bounded.remaining("steps") == 60
        assert base.remaining("steps") == 60  # input not mutated

    @pytest.mark.parametrize("seconds", [None, 0, -1.0])
    def test_passthrough_without_seconds(self, seconds):
        base = Budget(steps=100)
        assert with_deadline(base, seconds) is base

    def test_none_budget_defaults(self):
        bounded = with_deadline(None, 1.0)
        assert isinstance(bounded, DeadlineBudget)
        assert with_deadline(None, None) is not None


def _burner(budget=None):
    while True:
        budget.charge("steps")


class TestRunnerOffMainThread:
    """The satellite-2 regression: timeouts must work in worker threads."""

    def _run_in_thread(self, fn):
        box = {}

        def target():
            try:
                box["value"] = fn()
            except BaseException as exc:  # pragma: no cover — surfaced below
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive(), "runner deadlocked off main thread"
        if "error" in box:
            raise box["error"]
        return box["value"]

    def test_burning_task_times_out_in_a_worker_thread(self):
        def invoke():
            return run_suite(
                [RunTask("burn", _burner, budget=Budget.unlimited())],
                timeout=0.1,
                use_processes=False,
                intern=False,
            )

        started = time.monotonic()
        report = self._run_in_thread(invoke)
        elapsed = time.monotonic() - started
        [task] = report.tasks
        assert task.timed_out
        assert task.cause == "timeout"
        assert is_undefined(task.result)
        assert elapsed < 30

    def test_completing_task_is_untouched_off_main_thread(self):
        def quick(budget=None):
            budget.charge("steps")
            return 42

        def invoke():
            return run_suite(
                [RunTask("quick", quick)],
                timeout=30.0,
                use_processes=False,
                intern=False,
            )

        report = self._run_in_thread(invoke)
        [task] = report.tasks
        assert task.result == 42
        assert not task.timed_out

    def test_main_thread_serial_path_still_times_out(self):
        # On the main thread SIGALRM arms as before; either mechanism
        # may fire, but the report must say timeout either way.
        report = run_suite(
            [RunTask("burn", _burner, budget=Budget.unlimited())],
            timeout=0.1,
            use_processes=False,
            intern=False,
        )
        [task] = report.tasks
        assert task.timed_out
        assert task.cause == "timeout"

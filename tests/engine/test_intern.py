"""Interner invariants: identity, equality, and observational parity."""

import pickle

import pytest

from repro.engine.intern import (
    Interner,
    disable_interning,
    enable_interning,
    intern_stats,
    intern_value,
    interned,
    interning_enabled,
)
from repro.model.values import Atom, NamedTup, SetVal, Tup


@pytest.fixture(autouse=True)
def _clean_interner_state():
    disable_interning()
    yield
    disable_interning()


def _sample_values():
    return [
        Atom("a"),
        Atom(7),
        Tup([Atom("a"), Atom("b")]),
        SetVal([Atom(1), Atom(2)]),
        SetVal([Tup([Atom("x"), SetVal([])])]),
        NamedTup({"A": Atom("a"), "B": SetVal([Atom("b")])}),
    ]


class TestIdentity:
    def test_repeated_construction_is_identical(self):
        with interned():
            assert Atom("a") is Atom("a")
            assert Tup([Atom(1), Atom(2)]) is Tup([Atom(1), Atom(2)])
            assert SetVal([Atom(1), Atom(2)]) is SetVal([Atom(2), Atom(1)])
            assert NamedTup({"A": Atom(1), "B": Atom(2)}) is NamedTup(
                {"B": Atom(2), "A": Atom(1)}
            )

    def test_distinct_structures_stay_distinct(self):
        with interned():
            assert Atom("a") is not Atom("b")
            assert Atom(1) is not Atom("1")
            assert SetVal([Atom(1)]) != Tup([Atom(1)])

    def test_no_identity_without_interning(self):
        assert Tup([Atom(1)]) is not Tup([Atom(1)])

    def test_nested_shares_substructure(self):
        with interned():
            inner = SetVal([Atom("x")])
            outer = SetVal([SetVal([Atom("x")]), Atom("y")])
            member = next(m for m in outer.items if isinstance(m, SetVal))
            assert member is inner


class TestObservationalParity:
    """Interned and plain values are indistinguishable to == and hash."""

    def test_equality_and_hash_match_plain(self):
        plain = _sample_values()
        with interned():
            for value in plain:
                rebuilt = intern_value(value)
                assert rebuilt == value
                assert hash(rebuilt) == hash(value)
                assert value == rebuilt

    def test_bool_vs_int_labels_not_conflated(self):
        with interned():
            with pytest.raises(Exception):
                Atom(True)

    def test_pickle_round_trip(self):
        with interned():
            value = SetVal([Tup([Atom("a"), Atom(1)])])
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value


class TestLifecycle:
    def test_enable_disable(self):
        assert not interning_enabled()
        interner = enable_interning()
        assert interning_enabled()
        assert enable_interning() is interner  # idempotent: kept, not replaced
        disable_interning()
        assert not interning_enabled()

    def test_context_manager_restores(self):
        with interned():
            assert interning_enabled()
        assert not interning_enabled()

    def test_stats_count_hits_and_misses(self):
        with interned() as interner:
            Atom("fresh-0")
            before = interner.stats()
            Atom("fresh-0")
            after = interner.stats()
        assert after.hits == before.hits + 1
        assert after.size == before.size
        assert 0.0 <= after.hit_rate() <= 1.0
        assert set(after.as_dict()) == {"hits", "misses", "skips", "size", "hit_rate"}

    def test_stats_zero_when_disabled(self):
        stats = intern_stats()
        assert stats.hits == stats.misses == stats.size == 0

    def test_bounded_table_skips_instead_of_evicting(self):
        interner = Interner(max_entries=1)
        interner.store(("Atom", "a"), object())
        kept = interner._table[("Atom", "a")]
        interner.store(("Atom", "b"), object())
        assert len(interner) == 1
        assert interner.skips == 1
        assert interner._table[("Atom", "a")] is kept

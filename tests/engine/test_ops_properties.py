"""Property tests for the physical-operator kernel.

Two families of properties pin the kernel down:

* **differential** — the indexed paths (:class:`HashJoin` probing a
  :class:`Scan` index) must produce exactly the multiset of extensions
  the un-indexed reference :func:`nested_loop_join` produces, both at
  the operator level on random binding/fact sets and end-to-end through
  the COL and BK evaluators on seeded random databases (indexed vs
  naive/no-index modes are full program runs through different join
  code paths);
* **counter consistency** — the :class:`OpStats` actuals that EXPLAIN
  renders must obey the obvious data-flow inequalities
  (``rows_out <= rows_in * |facts|``, one probe per keyed binding, one
  index build per spec).
"""

from hypothesis import given, settings, strategies as st

from repro.budget import Budget
from repro.deductive.bk import BKAtom, BKProgram, BKRule, BKVar, run_bk
from repro.deductive.col import Interp
from repro.deductive.stratify import run_stratified
from repro.engine.ops import (
    FIRST_COORDINATE,
    HashJoin,
    OpStats,
    Scan,
    TupleKey,
    nested_loop_join,
)
from repro.errors import is_undefined
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, NamedTup, Tup
from repro.query.parser import parse


ATOMS = [Atom(label) for label in "abcd"]

pairs = st.lists(
    st.tuples(st.sampled_from(ATOMS), st.sampled_from(ATOMS)),
    max_size=12,
    unique=True,
)


def _pair_facts(raw):
    return {Tup(pair) for pair in raw}


def _extend(binding, fact):
    """Join {x: atom} bindings against R(x, y) pair facts."""
    if fact.items[0] == binding["x"]:
        yield {**binding, "y": fact.items[1]}


def _canon(bindings):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in b.items())) for b in bindings
    )


class TestHashJoinVsReference:
    @given(pairs, st.lists(st.sampled_from(ATOMS), max_size=8))
    @settings(max_examples=100)
    def test_tuple_key_join_matches_nested_loop(self, raw, seeds):
        facts = _pair_facts(raw)
        bindings = [{"x": atom} for atom in seeds]
        scan = Scan("R", facts)
        join = HashJoin(scan, TupleKey(2, (0,)))
        indexed = join.join(
            bindings, lambda b: (b["x"],), _extend
        )
        reference = nested_loop_join(bindings, facts, _extend)
        assert _canon(indexed) == _canon(reference)

    @given(pairs, st.lists(st.sampled_from(ATOMS), max_size=8))
    @settings(max_examples=100)
    def test_first_coordinate_probe_matches_filter(self, raw, seeds):
        facts = _pair_facts(raw)
        scan = Scan("R", facts)
        for atom in seeds:
            probed = scan.probe(FIRST_COORDINATE, atom)
            assert probed == {f for f in facts if f.items[0] == atom}

    @given(pairs, st.lists(st.sampled_from(ATOMS), max_size=8))
    @settings(max_examples=100)
    def test_exclusion_agrees_with_reference(self, raw, seeds):
        facts = _pair_facts(raw)
        exclude = {f for f in facts if f.items[1] == Atom("a")}
        bindings = [{"x": atom} for atom in seeds]
        scan = Scan("R", facts)
        join = HashJoin(scan, TupleKey(2, (0,)))
        indexed = join.join(
            bindings, lambda b: (b["x"],), _extend, exclude=exclude
        )
        reference = nested_loop_join(
            bindings, facts, _extend, exclude=exclude
        )
        assert _canon(indexed) == _canon(reference)


class TestCounterConsistency:
    @given(pairs, st.lists(st.sampled_from(ATOMS), max_size=8))
    @settings(max_examples=100)
    def test_hash_join_counters(self, raw, seeds):
        facts = _pair_facts(raw)
        bindings = [{"x": atom} for atom in seeds]
        stats = OpStats()
        scan = Scan("R", facts)
        join = HashJoin(scan, TupleKey(2, (0,)), stats=stats)
        out = join.join(bindings, lambda b: (b["x"],), _extend)
        assert stats.rows_in == len(bindings)
        assert stats.probes == len(bindings)  # every binding has a key
        assert stats.rows_out == len(out)
        assert stats.rows_out <= stats.rows_in * max(len(facts), 1)
        assert scan.stats.index_builds == 1

    @given(pairs, st.lists(st.sampled_from(ATOMS), max_size=8))
    @settings(max_examples=100)
    def test_nested_loop_counters(self, raw, seeds):
        facts = _pair_facts(raw)
        bindings = [{"x": atom} for atom in seeds]
        stats = OpStats()
        out = nested_loop_join(bindings, facts, _extend, stats=stats)
        assert stats.rows_in == len(bindings)
        assert stats.rows_out == len(out)
        assert stats.rows_out <= stats.rows_in * max(len(facts), 1)

    @given(pairs)
    @settings(max_examples=50)
    def test_incremental_index_maintenance(self, raw):
        facts = list(_pair_facts(raw))
        scan = Scan("R")
        scan.index(TupleKey(2, (0,)))  # build empty, then maintain
        for fact in facts:
            assert scan.add(fact)
            assert not scan.add(fact)  # idempotent
        rebuilt = Scan("R", facts)
        spec = TupleKey(2, (0,))
        assert scan.index(spec) == rebuilt.index(spec)
        assert scan.stats.index_builds == 1


TC_TEXT = (
    "rules { T(x, y) :- R(x, y). T(x, z) :- T(x, y), R(y, z). } answer T"
)
COL_SCHEMA = Schema({"R": parse_type("[U, U]")})


class TestColIndexedVsNaive:
    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_transitive_closure_agrees(self, raw):
        database = Database.from_plain(COL_SCHEMA, R=[tuple(p) for p in raw])
        program = parse(TC_TEXT, schema=COL_SCHEMA).program
        indexed = run_stratified(program, database, Budget())
        naive = run_stratified(program, database, Budget(), naive=True)
        saved = Interp.use_index
        Interp.use_index = False
        try:
            unindexed = run_stratified(program, database, Budget())
        finally:
            Interp.use_index = saved
        assert indexed == naive == unindexed


def _bk_join_program():
    x, y, z = BKVar("x"), BKVar("y"), BKVar("z")
    rules = [
        BKRule(
            BKAtom("ANS", {"A": x, "C": z}),
            [BKAtom("R1", {"A": x, "B": y}), BKAtom("R2", {"B": y, "C": z})],
        ),
        BKRule(
            BKAtom("ANS", {"A": x, "C": x}),
            [BKAtom("R1", {"A": x, "B": x})],
        ),
    ]
    return BKProgram(rules, answer="ANS", name="prop-join")


class TestBKModesAgree:
    @given(pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_hashjoin_dirty_naive_agree(self, raw1, raw2):
        database = {
            "R1": [NamedTup({"A": a, "B": b}) for a, b in raw1],
            "R2": [NamedTup({"B": b, "C": c}) for b, c in raw2],
        }
        program = _bk_join_program()
        results = {
            mode: run_bk(program, database, Budget(), mode=mode)
            for mode in ("hashjoin", "dirty", "naive")
        }
        defined = [r for r in results.values() if not is_undefined(r)]
        assert len(defined) == len(results), f"unexpected ?: {results}"
        assert results["hashjoin"] == results["dirty"] == results["naive"]

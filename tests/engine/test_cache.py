"""MemoCache: hits across permuted-isomorphic inputs, soundness guards."""

import pytest

from repro.budget import Budget
from repro.deductive.datalog import (
    run_datalog_stratified,
    transitive_closure_datalog,
)
from repro.engine.cache import LRUCache, MemoCache, program_fingerprint
from repro.engine.canon import Renaming, canonical_atom, canonicalise_database
from repro.errors import UNDEFINED
from repro.model.genericity import Permutation
from repro.model.schema import Database, Schema
from repro.model.types import parse_type
from repro.model.values import Atom, SetVal, Tup
from repro.workloads import chain_graph, random_graph


def _permute(database, shift=1):
    atoms = sorted(database.adom(), key=lambda a: a.canon_key())
    mapping = {atoms[i]: atoms[(i + shift) % len(atoms)] for i in range(len(atoms))}
    return Permutation(mapping)(database)


def _run_tc(database):
    return run_datalog_stratified(
        transitive_closure_datalog(),
        database,
        Budget(steps=None, facts=None, iterations=None),
    )


class TestCanonicalisation:
    @pytest.mark.parametrize("shift", [1, 2, 5])
    def test_permuted_isomorphic_share_canonical_form(self, shift):
        database = chain_graph(8)
        permuted = _permute(database, shift)
        canon_a, _ = canonicalise_database(database)
        canon_b, _ = canonicalise_database(permuted)
        assert canon_a == canon_b

    def test_renaming_round_trips(self):
        database = random_graph(7, 12, seed=1)
        canon, renaming = canonicalise_database(database)
        assert renaming.inverse()(canon) == database

    def test_constants_stay_fixed(self):
        database = chain_graph(4)
        anchor = sorted(database.adom(), key=lambda a: a.canon_key())[0]
        canon, renaming = canonicalise_database(database, constants=(anchor,))
        assert anchor in canon.adom()
        assert anchor not in renaming.mapping

    def test_non_isomorphic_do_not_collide(self):
        schema = Schema({"R": parse_type("[U, U]")})
        a = Database(schema, {"R": {("x", "y"), ("y", "z")}})  # path
        b = Database(schema, {"R": {("x", "y"), ("x", "z")}})  # fan
        canon_a, _ = canonicalise_database(a)
        canon_b, _ = canonicalise_database(b)
        assert canon_a != canon_b

    def test_canonical_atoms_disjoint_from_input(self):
        database = chain_graph(3)
        canon, _ = canonicalise_database(database)
        assert not (set(canon.adom()) & set(database.adom()))
        assert canonical_atom(0) in canon.adom()

    def test_renaming_applies_structurally(self):
        renaming = Renaming({Atom("a"): Atom("z")})
        value = SetVal([Tup([Atom("a"), Atom("b")])])
        assert renaming(value) == SetVal([Tup([Atom("z"), Atom("b")])])


class TestMemoCache:
    def test_hit_on_permuted_isomorphic_database(self):
        program = transitive_closure_datalog()
        database = chain_graph(8)
        permuted = _permute(database, 3)
        cache = MemoCache()
        first = cache.run(_run_tc, program, database)
        second = cache.run(_run_tc, program, permuted)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        # Soundness: the cached-and-renamed answer equals a direct run.
        assert second == _run_tc(permuted)
        assert first == _run_tc(database)

    def test_same_database_hits(self):
        program = transitive_closure_datalog()
        database = chain_graph(5)
        cache = MemoCache()
        assert cache.run(_run_tc, program, database) == cache.run(
            _run_tc, program, database
        )
        assert cache.stats.hits == 1

    def test_bypass_for_non_generic_programs(self):
        program = transitive_closure_datalog()
        database = chain_graph(4)
        cache = MemoCache()
        out = cache.run(_run_tc, program, database, generic=False)
        assert out == _run_tc(database)
        assert cache.stats.bypasses == 1
        assert len(cache) == 0  # nothing was stored

    def test_different_programs_do_not_share(self):
        from repro.deductive.datalog import non_reachable_datalog

        database = chain_graph(4)
        cache = MemoCache()
        cache.run(_run_tc, transitive_closure_datalog(), database)
        cache.run(
            lambda d: run_datalog_stratified(
                non_reachable_datalog(), d, Budget(steps=None, facts=None)
            ),
            non_reachable_datalog(),
            database,
        )
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_extra_key_separates_modes(self):
        program = transitive_closure_datalog()
        database = chain_graph(4)
        cache = MemoCache()
        cache.run(_run_tc, program, database, extra_key="stratified")
        cache.run(_run_tc, program, database, extra_key="inflationary")
        assert cache.stats.misses == 2

    def test_undefined_results_are_cached(self):
        program = transitive_closure_datalog()
        database = chain_graph(6)
        cache = MemoCache()
        calls = []

        def diverging(db):
            calls.append(1)
            return UNDEFINED

        assert cache.run(diverging, program, database) is UNDEFINED
        assert cache.run(diverging, program, _permute(database, 2)) is UNDEFINED
        assert len(calls) == 1

    def test_lru_bound_evicts(self):
        program = transitive_closure_datalog()
        cache = MemoCache(max_entries=2)
        for n in (3, 4, 5):
            cache.run(_run_tc, program, chain_graph(n))
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_fingerprint_distinguishes_machines(self):
        from repro.gtm.library import all_machines

        machines = all_machines()
        prints = {
            program_fingerprint(machines[name][0]) for name in machines
        }
        assert len(prints) == len(machines)


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)

"""run_suite: results, sub-budgets, timeouts, fallbacks, reporting."""

import json
import time

from repro.budget import Budget
from repro.engine.cache import MemoCache
from repro.engine.runner import RunTask, run_suite
from repro.errors import UNDEFINED, is_undefined


# Module-level so tasks pickle for the process pool.
def _tc(length, budget=None):
    from repro.deductive.datalog import (
        run_datalog_stratified,
        transitive_closure_datalog,
    )
    from repro.workloads import chain_graph

    return run_datalog_stratified(
        transitive_closure_datalog(), chain_graph(length), budget
    )


def _sleepy(budget=None):
    time.sleep(10)
    return "done"


def _spender(budget=None):
    budget.charge("steps", 7)
    return "spent"


def _burner(budget=None):
    while True:
        budget.charge("steps")


def _crash(budget=None):
    raise RuntimeError("boom")


class TestRunSuite:
    def test_results_by_name(self):
        report = run_suite(
            [RunTask(f"tc{n}", _tc, (n,)) for n in (3, 5)], use_processes=False
        )
        direct = {f"tc{n}": _tc(n, Budget()) for n in (3, 5)}
        assert report.results() == direct
        assert report["tc3"].result == direct["tc3"]

    def test_parallel_matches_serial(self):
        tasks = [RunTask(f"tc{n}", _tc, (n,)) for n in (3, 4, 5)]
        parallel = run_suite(tasks)
        serial = run_suite(tasks, use_processes=False)
        assert parallel.results() == serial.results()
        assert serial.parallel is False

    def test_budget_spend_reported(self):
        report = run_suite([RunTask("s", _spender)], use_processes=False)
        assert report["s"].spent["steps"] == 7
        assert report.spend()["steps"] == 7

    def test_sub_budgets_bounded_by_suite_budget(self):
        suite = Budget(steps=3)
        report = run_suite([RunTask("b", _burner)], budget=suite, use_processes=False)
        assert is_undefined(report["b"].result)
        assert report["b"].spent["steps"] == 3
        assert suite.spent("steps") == 0  # children charge independently

    def test_per_task_budget_override(self):
        report = run_suite(
            [RunTask("b", _burner, budget=Budget(steps=5))], use_processes=False
        )
        assert report["b"].spent["steps"] == 5

    def test_budget_exhaustion_is_undefined_not_error(self):
        report = run_suite(
            [RunTask("b", _burner, budget=Budget(steps=10))], use_processes=False
        )
        assert report["b"].result is UNDEFINED
        assert report["b"].error is None

    def test_budget_exhaustion_cause_names_the_resource(self):
        report = run_suite(
            [RunTask("b", _burner, budget=Budget(steps=10))], use_processes=False
        )
        assert report["b"].cause == "budget:steps"
        assert report["b"].timed_out is False

    def test_timeout_yields_undefined(self):
        report = run_suite(
            [RunTask("slow", _sleepy), RunTask("fast", _tc, (3,))], timeout=0.4
        )
        assert is_undefined(report["slow"].result)
        assert report["slow"].timed_out
        assert report["slow"].cause == "timeout"
        assert report["fast"].result == _tc(3, Budget())
        assert report["fast"].cause is None

    def test_timeout_and_budget_causes_distinguished_in_json(self):
        report = run_suite(
            [
                RunTask("slow", _sleepy, timeout=0.4),
                RunTask("broke", _burner, budget=Budget(steps=5)),
            ],
        )
        payload = {t["name"]: t for t in json.loads(report.to_json())["tasks"]}
        assert payload["slow"]["cause"] == "timeout"
        assert payload["broke"]["cause"] == "budget:steps"
        assert payload["slow"]["undefined"] and payload["broke"]["undefined"]

    def test_errors_reported_not_raised(self):
        report = run_suite([RunTask("c", _crash)], use_processes=False)
        assert is_undefined(report["c"].result)
        assert "RuntimeError" in report["c"].error
        assert report["c"].cause == "error"

    def test_unpicklable_falls_back_to_serial(self):
        captured = []

        def closure_task(budget=None):  # closures cannot cross processes
            captured.append(1)
            return "ok"

        report = run_suite(
            [RunTask("a", closure_task), RunTask("b", closure_task)],
            use_processes=True,
        )
        assert report.parallel is False
        assert report.results() == {"a": "ok", "b": "ok"}
        assert len(captured) == 2

    def test_interner_stats_in_report(self):
        report = run_suite(
            [RunTask(f"tc{n}", _tc, (n,)) for n in (4, 5)], use_processes=False
        )
        assert report.interner["misses"] > 0
        report_off = run_suite([RunTask("tc", _tc, (4,))], intern=False)
        assert report_off.interner == {}

    def test_cache_stats_in_report(self):
        cache = MemoCache()
        cache.stats.hits = 3
        report = run_suite([RunTask("tc", _tc, (3,))], cache=cache, use_processes=False)
        assert report.cache["hits"] == 3

    def test_to_json_round_trips(self):
        report = run_suite([RunTask("tc", _tc, (3,))], use_processes=False)
        payload = json.loads(report.to_json())
        assert payload["tasks"][0]["name"] == "tc"
        assert payload["tasks"][0]["undefined"] is False
        assert "spend" in payload

    def test_summary_mentions_shape(self):
        report = run_suite([RunTask("tc", _tc, (3,))], use_processes=False)
        text = report.summary()
        assert "1 task" in text
        assert "serial" in text

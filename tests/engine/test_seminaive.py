"""Semi-naive == naive, cross-checked on the E6/E7/E8 workloads."""

import pytest

from repro.budget import Budget
from repro.deductive.ast import (
    ColProgram,
    EqLit,
    FuncLit,
    FuncT,
    PredLit,
    Rule,
    TupD,
    VarD,
)
from repro.deductive.bk import chain_to_list_program, join_attempt_program, run_bk
from repro.deductive.datalog import (
    non_reachable_datalog,
    run_datalog_inflationary,
    run_datalog_stratified,
    transitive_closure_datalog,
    unstratifiable_program,
)
from repro.deductive.inflationary import run_inflationary
from repro.deductive.stratify import run_stratified
from repro.errors import UNDEFINED, is_undefined
from repro.workloads import chain_for_bk, chain_graph, cycle_graph, random_graph


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None, facts=None)


GRAPHS = [chain_graph(10), cycle_graph(7), random_graph(9, 18, seed=3)]


class TestDatalogE6:
    @pytest.mark.parametrize("database", GRAPHS, ids=["chain", "cycle", "random"])
    def test_tc_stratified(self, database):
        program = transitive_closure_datalog()
        naive = run_datalog_stratified(program, database, _unlimited(), naive=True)
        semi = run_datalog_stratified(program, database, _unlimited())
        assert semi == naive

    @pytest.mark.parametrize("database", GRAPHS, ids=["chain", "cycle", "random"])
    def test_tc_inflationary(self, database):
        program = transitive_closure_datalog()
        naive = run_datalog_inflationary(program, database, _unlimited(), naive=True)
        semi = run_datalog_inflationary(program, database, _unlimited())
        assert semi == naive

    @pytest.mark.parametrize("database", GRAPHS, ids=["chain", "cycle", "random"])
    def test_non_reachable_negation(self, database):
        program = non_reachable_datalog()
        naive = run_datalog_stratified(program, database, _unlimited(), naive=True)
        semi = run_datalog_stratified(program, database, _unlimited())
        assert semi == naive

    def test_win_move_inflationary(self):
        program = unstratifiable_program("ANS")
        for database in GRAPHS:
            relabelled = database  # R is the move relation modulo name
            naive = run_datalog_inflationary(
                _rename(program), relabelled, _unlimited(), naive=True
            )
            semi = run_datalog_inflationary(_rename(program), relabelled, _unlimited())
            assert semi == naive

    def test_budget_exhaustion_stays_undefined(self):
        # A divergence observed naive-ly is still observed semi-naive-ly.
        program = transitive_closure_datalog()
        database = cycle_graph(8)
        tight = Budget(facts=5)
        assert is_undefined(run_datalog_stratified(program, database, tight))
        tight = Budget(facts=5)
        assert is_undefined(
            run_datalog_stratified(program, database, tight, naive=True)
        )


def _rename(program):
    """win-move reads ``move``; our graph workloads provide ``R``."""
    x, y = VarD("x"), VarD("y")
    rules = [
        Rule(
            PredLit("win", x),
            [PredLit("R", TupD([x, y])), PredLit("win", y, positive=False)],
        ),
        Rule(PredLit("ANS", x), [PredLit("win", x)]),
    ]
    return ColProgram(rules, answer="ANS", name="win-move-R")


class TestColFunctions:
    """COL rules with data functions exercise the FuncT paths."""

    def _collect_program(self):
        # F(x) collects the successors of x; ANS pairs x with the full
        # set value F(x) — a function-*value* term, the non-delta-safe
        # case in the inflationary driver and an extra stratum in the
        # stratified one.
        x, y = VarD("x"), VarD("y")
        rules = [
            Rule(FuncLit("F", x, y), [PredLit("R", TupD([x, y]))]),
            Rule(PredLit("node", x), [PredLit("R", TupD([x, y]))]),
            Rule(
                PredLit("ANS", TupD([x, FuncT("F", x)])),
                [PredLit("node", x)],
            ),
        ]
        return ColProgram(rules, answer="ANS", name="collect-successors")

    @pytest.mark.parametrize("database", GRAPHS, ids=["chain", "cycle", "random"])
    def test_stratified_with_function_values(self, database):
        program = self._collect_program()
        naive = run_stratified(program, database, _unlimited(), naive=True)
        semi = run_stratified(program, database, _unlimited())
        assert semi == naive

    @pytest.mark.parametrize("database", GRAPHS, ids=["chain", "cycle", "random"])
    def test_inflationary_with_function_values(self, database):
        program = self._collect_program()
        naive = run_inflationary(program, database, _unlimited(), naive=True)
        semi = run_inflationary(program, database, _unlimited())
        assert semi == naive

    def test_equality_binder_rule(self):
        # x ≈ t binders are filters after the join; check they survive
        # the generator/filter split.
        x, y, s = VarD("x"), VarD("y"), VarD("s")
        rules = [
            Rule(FuncLit("F", x, y), [PredLit("R", TupD([x, y]))]),
            Rule(PredLit("node", x), [PredLit("R", TupD([x, y]))]),
            Rule(
                PredLit("ANS", s),
                [PredLit("node", x), EqLit(s, FuncT("F", x))],
            ),
        ]
        program = ColProgram(rules, answer="ANS", name="binder")
        database = chain_graph(6)
        naive = run_stratified(program, database, _unlimited(), naive=True)
        semi = run_stratified(program, database, _unlimited())
        assert semi == naive


class TestBKE7E8:
    def test_join_attempt_indexed_equals_naive(self):
        program = join_attempt_program()
        data = {
            "R1": [{"A": f"a{i}", "B": f"b{i}"} for i in range(3)],
            "R2": [{"B": "b0", "C": f"c{j}"} for j in range(2)],
        }
        budget = Budget(objects=None, steps=None, facts=None, iterations=None)
        naive = run_bk(program, data, budget, naive=True)
        indexed = run_bk(program, data, budget)
        assert indexed == naive

    def test_chain_prefix_indexed_equals_naive(self):
        program = chain_to_list_program()
        data = chain_for_bk(3)
        make = lambda: Budget(objects=None, steps=None, facts=None, iterations=None)
        naive = run_bk(program, data, make(), max_rounds=3, naive=True)
        indexed = run_bk(program, data, make(), max_rounds=3)
        assert indexed == naive

    def test_divergence_still_observed(self):
        program = chain_to_list_program()
        data = chain_for_bk(2)
        out = run_bk(
            program,
            data,
            Budget(iterations=5, steps=100_000, objects=200_000, facts=None),
        )
        assert out is UNDEFINED

"""Unit tests for the Theorem 5.1 compiler (GTM -> COL)."""

import pytest

from repro.budget import Budget
from repro.core.col_simulation import (
    compile_gtm_to_col,
    encode_database_for_col,
    nest_position,
    run_col_for_all_orderings,
    run_compiled_col,
)
from repro.deductive.stratify import stratify
from repro.errors import is_undefined
from repro.gtm.library import all_machines, is_empty_gtm, parity_gtm
from repro.gtm.run import gtm_query
from repro.model.schema import Database
from repro.model.values import Atom


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None, facts=None)


def _databases_for(name, schema):
    if name in ("identity", "reverse", "select_eq"):
        data = [set(), {(1, 2), (3, 3)}]
    else:
        data = [set(), {1, 2}]
    return [Database(schema, {"R": rows}) for rows in data]


class TestEncoding:
    def test_nest_position_injective(self):
        positions = [nest_position(i) for i in range(8)]
        assert len(set(positions)) == 8

    def test_edb_contents(self):
        gtm, schema, output_type = parity_gtm()
        database = Database(schema, {"R": {1, 2}})
        edb = encode_database_for_col(gtm, database)
        assert len(edb["IN"]) == 4  # ( 1 2 )
        assert Atom("(") in {row.items[1] for row in edb["IN"].items}
        assert Atom("even") in edb["WC"]
        assert Atom("even") not in edb["WS"]
        assert len(edb["EDGE1"]) == 1


class TestCompiledPrograms:
    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_stratified_agrees_with_direct(self, name):
        gtm, schema, output_type = all_machines()[name]
        program = compile_gtm_to_col(gtm, output_type)
        for database in _databases_for(name, schema):
            direct = gtm_query(gtm, database, output_type)
            compiled = run_compiled_col(
                program, gtm, database, "stratified", _unlimited()
            )
            assert direct == compiled

    @pytest.mark.parametrize("name", ["parity", "reverse"])
    def test_inflationary_agrees_with_stratified(self, name):
        gtm, schema, output_type = all_machines()[name]
        program = compile_gtm_to_col(gtm, output_type)
        for database in _databases_for(name, schema):
            stratified = run_compiled_col(
                program, gtm, database, "stratified", _unlimited()
            )
            inflationary = run_compiled_col(
                program, gtm, database, "inflationary", _unlimited()
            )
            assert stratified == inflationary

    def test_programs_are_stratifiable(self):
        gtm, _, output_type = parity_gtm()
        program = compile_gtm_to_col(gtm, output_type)
        strata = stratify(program)
        assert len(strata) >= 1

    def test_divergence_is_undefined(self):
        # A genuinely diverging machine: spins on '(' forever.  Its COL
        # program has no finite minimal model ("we view the output to be
        # undefined"), observed through the budget.
        from repro.gtm.machine import GTM
        from repro.model.encoding import BLANK

        spinner = GTM(
            states={"s", "h"},
            working=[],
            constants=[],
            delta={("s", "(", BLANK): ("s", "(", BLANK, "-", "-")},
            start="s",
            halt="h",
        )
        _, schema, output_type = is_empty_gtm()
        program = compile_gtm_to_col(spinner, output_type)
        database = Database(schema, {"R": {1, 2}})
        out = run_compiled_col(
            program, spinner, database, "stratified", Budget(facts=2000)
        )
        assert is_undefined(out)

    def test_order_independence(self):
        gtm, schema, output_type = parity_gtm()
        program = compile_gtm_to_col(gtm, output_type)
        database = Database(schema, {"R": {1, 2}})
        common = run_col_for_all_orderings(
            program, gtm, database, max_orders=2, budget_factory=_unlimited
        )
        assert common == gtm_query(gtm, database, output_type)

    def test_bad_semantics_name(self):
        from repro.errors import EvaluationError

        gtm, schema, output_type = parity_gtm()
        program = compile_gtm_to_col(gtm, output_type)
        database = Database(schema, {"R": {1}})
        with pytest.raises(EvaluationError):
            run_compiled_col(program, gtm, database, "magic")

"""Unit tests for the cross-language equivalence harness."""

import pytest

from repro.core.classes import QueryFunction, elementary_time_bound, language_chain
from repro.core.counters import (
    singleton_nest,
    singleton_rank,
    singleton_succ,
    von_neumann,
    von_neumann_rank,
    von_neumann_succ,
)
from repro.core.equivalence import (
    ALL_ROUTES,
    Disagreement,
    check_agreement,
    implementations_for,
)
from repro.gtm.library import is_empty_gtm
from repro.model.values import SetVal
from repro.workloads import suite_unary


class TestImplementationsFor:
    def test_all_routes_built(self):
        gtm, schema, output_type = is_empty_gtm()
        impls = implementations_for(gtm, schema, output_type)
        assert len(impls) == len(ALL_ROUTES)
        languages = {impl.language for impl in impls}
        assert "GTM" in languages and "COL^str" in languages

    def test_route_subset(self):
        gtm, schema, output_type = is_empty_gtm()
        impls = implementations_for(gtm, schema, output_type, routes=["gtm", "tm"])
        assert len(impls) == 2


class TestCheckAgreement:
    def test_agreement_passes(self):
        gtm, schema, output_type = is_empty_gtm()
        impls = implementations_for(
            gtm, schema, output_type, routes=["gtm", "tm", "calc_terminal"]
        )
        outcomes = check_agreement(impls, suite_unary((0, 1, 2)))
        assert len(outcomes) == 3

    def test_disagreement_raised(self):
        gtm, schema, output_type = is_empty_gtm()
        impls = implementations_for(gtm, schema, output_type, routes=["gtm"])
        broken = QueryFunction(
            "broken", "lies", lambda d: SetVal([]), constants=()
        )
        with pytest.raises(Disagreement):
            check_agreement(impls + [broken], suite_unary((0,)))


class TestClasses:
    def test_language_chain_shape(self):
        chain = language_chain()
        assert [entry[0] for entry in chain] == ["E", "C", "beyond-C"]
        # C contains the while-algebra and both COL semantics.
        c_members = chain[1][1]
        assert "COL^str" in c_members and "COL^inf" in c_members

    def test_elementary_bound(self):
        assert elementary_time_bound(0, 9) == 9
        assert elementary_time_bound(2, 2) == 16

    def test_query_function_checks(self, unary_db):
        qf = QueryFunction("id", "test", lambda d: d["R"])
        assert qf.check_generic([unary_db], max_perms=6)
        assert qf.check_domain_preserving([unary_db])


class TestCounters:
    def test_von_neumann_injective(self):
        assert len(set(von_neumann(8))) == 8

    def test_von_neumann_succ_matches_sequence(self):
        seq = von_neumann(6)
        for i in range(5):
            assert von_neumann_succ(seq[i]) == seq[i + 1]

    def test_von_neumann_rank(self):
        seq = von_neumann(5)
        assert [von_neumann_rank(v) for v in seq] == list(range(5))
        assert von_neumann_rank(SetVal([von_neumann(3)[2]])) is None

    def test_singleton_injective(self):
        assert len(set(singleton_nest(8))) == 8

    def test_singleton_succ_and_rank(self):
        seq = singleton_nest(6)
        for i in range(5):
            assert singleton_succ(seq[i]) == seq[i + 1]
        assert [singleton_rank(v) for v in seq] == list(range(6))
        assert singleton_rank(SetVal([SetVal([]), SetVal([SetVal([])])])) is None

    def test_counters_are_atom_free(self):
        from repro.model.values import adom

        for value in von_neumann(5) + singleton_nest(5):
            assert adom(value) == frozenset()

"""Unit tests for the Theorem 6.4 machinery (terminal invention)."""

import pytest

from repro.budget import Budget
from repro.calculus.invention import terminal_invention, upper_stage
from repro.core.calc_simulation import (
    GTMStagedQuery,
    compile_gtm_to_calc,
    terminal_stage_prediction,
)
from repro.errors import is_undefined
from repro.gtm.library import all_machines, duplicate_gtm, parity_gtm
from repro.gtm.run import gtm_query
from repro.model.schema import Database
from repro.model.values import SetVal, contains_any


def _databases_for(name, schema):
    if name in ("identity", "reverse", "select_eq"):
        data = [set(), {(1, 2)}, {(3, 3), (4, 5)}]
    else:
        data = [set(), {1}, {1, 2}]
    return [Database(schema, {"R": rows}) for rows in data]


class TestTerminalInvention:
    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_agreement_with_direct_run(self, name):
        gtm, schema, output_type = all_machines()[name]
        staged = compile_gtm_to_calc(gtm, output_type)
        for database in _databases_for(name, schema):
            direct = gtm_query(gtm, database, output_type)
            via_ti = terminal_invention(staged, database, Budget(stages=64))
            assert direct == via_ti

    def test_terminal_stage_matches_prediction(self):
        gtm, schema, output_type = duplicate_gtm()
        staged = compile_gtm_to_calc(gtm, output_type)
        database = Database(schema, {"R": {1, 2, 3}})
        fired = []
        terminal_invention(
            staged, database, on_stage=lambda i, u: fired.append(i)
        )
        assert fired[-1] == terminal_stage_prediction(staged, database)

    def test_witness_tuples_carry_invented_atoms(self):
        gtm, schema, output_type = parity_gtm()
        staged = compile_gtm_to_calc(gtm, output_type)
        database = Database(schema, {"R": {1, 2}})
        from repro.calculus.invention import invented_atoms

        atoms = invented_atoms(3)
        upper = staged.stage(database, atoms, Budget())
        assert any(contains_any(member, set(atoms)) for member in upper.items)

    def test_stage_zero_never_terminal(self):
        gtm, schema, output_type = parity_gtm()
        staged = compile_gtm_to_calc(gtm, output_type)
        database = Database(schema, {"R": {1, 2}})
        upper0 = upper_stage(staged, database, 0)
        # No invented atoms exist at stage 0, so nothing can leak.
        from repro.calculus.invention import invented_atoms

        assert not any(
            contains_any(member, set(invented_atoms(5))) for member in upper0.items
        )

    def test_insufficient_capacity_returns_empty(self):
        gtm, schema, output_type = duplicate_gtm()
        staged = compile_gtm_to_calc(gtm, output_type)
        # A big input with stage 0: the run cannot fit.
        database = Database(schema, {"R": set(range(3))})
        need = terminal_stage_prediction(staged, database)
        assert need >= 1
        for stage in range(need):
            upper = upper_stage(staged, database, stage)
            assert upper == SetVal([])

    def test_diverging_query_is_undefined(self):
        class NeverTerminal:
            name = "never"

            def stage(self, database, atoms, budget):
                return SetVal([])

        out = terminal_invention(
            NeverTerminal(), Database(parity_gtm()[1], {"R": {1}}), Budget(stages=6)
        )
        assert is_undefined(out)


class TestCapacity:
    def test_quadratic_in_domain_plus_stage(self):
        gtm, schema, output_type = parity_gtm()
        staged = GTMStagedQuery(gtm, output_type)
        database = Database(schema, {"R": {1, 2}})
        base = len(database.adom()) + len(gtm.constants)
        assert staged.capacity(database, 0) == base * base
        assert staged.capacity(database, 3) == (base + 3) ** 2

"""Unit tests for the Theorem 6.3 flattening machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flattening import (
    flatten_value,
    invention_supply,
    node_count,
    objects_at_stage,
    unflatten_value,
)
from repro.errors import EvaluationError
from repro.model.values import Atom, SetVal, Tup, adom


def _ids(count):
    return [Atom(f"ι{i}") for i in range(count)]


def _obj_strategy():
    atoms = st.sampled_from([Atom("a"), Atom("b"), Atom(1)])
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(Tup),
            st.lists(children, min_size=0, max_size=3).map(SetVal),
        ),
        max_leaves=6,
    )


class TestNodeCount:
    def test_atom(self):
        assert node_count(Atom("a")) == 1

    def test_set(self):
        assert node_count(SetVal([])) == 1
        assert node_count(SetVal([Atom("a"), Atom("b")])) == 3

    def test_tuple_includes_spine(self):
        # [a, b]: root spine + end marker (2) + two atom nodes... the
        # exact formula: 1 + arity + coordinate nodes.
        assert node_count(Tup([Atom("a"), Atom("b")])) == 5


class TestRoundTrip:
    def test_atom(self):
        root, rows = flatten_value(Atom("a"), _ids(5))
        assert unflatten_value(root, rows) == Atom("a")

    def test_empty_set(self):
        root, rows = flatten_value(SetVal([]), _ids(5))
        assert unflatten_value(root, rows) == SetVal([])

    def test_nested(self):
        value = SetVal([Tup([Atom("a"), SetVal([Atom("b")])]), Atom("c")])
        root, rows = flatten_value(value, _ids(node_count(value)))
        assert unflatten_value(root, rows) == value

    def test_rows_are_quadruples_over_flat_type(self):
        from repro.model.types import parse_type

        value = Tup([Atom("a"), Atom("b")])
        _, rows = flatten_value(value, _ids(10))
        quad = parse_type("[U, U, U, U]")
        assert all(quad.matches(row) for row in rows.items)

    @given(_obj_strategy())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_random(self, value):
        ids = _ids(node_count(value))
        root, rows = flatten_value(value, ids)
        assert unflatten_value(root, rows) == value

    @given(_obj_strategy())
    @settings(max_examples=80, deadline=None)
    def test_exactly_node_count_ids_needed(self, value):
        need = node_count(value)
        flatten_value(value, _ids(need))  # enough
        if need > 0:
            with pytest.raises(EvaluationError):
                flatten_value(value, _ids(need - 1))  # one too few

    def test_bad_encoding_rejected(self):
        root, rows = flatten_value(Atom("a"), _ids(3))
        with pytest.raises(EvaluationError):
            unflatten_value(Atom("ι99"), rows)  # dangling root


class TestSupply:
    def test_invention_supply_distinct_from_one_atom(self):
        supply = invention_supply(Atom("seed"), 20)
        assert len(set(supply)) == 20
        for value in supply:
            assert adom(value) <= frozenset({Atom("seed")})

    def test_objects_at_stage_monotone(self):
        atoms = [Atom("a")]
        small = set(objects_at_stage(atoms, 2, limit=30))
        large = set(objects_at_stage(atoms, 5, limit=30))
        assert small <= large

    def test_stage_bound_respected(self):
        for value in objects_at_stage([Atom("a")], 3, limit=40):
            assert node_count(value) <= 3

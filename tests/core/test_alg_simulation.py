"""Unit tests for the Theorem 4.1(b) compiler (GTM -> ALG+while)."""

import pytest

from repro.algebra.typing import classify
from repro.budget import Budget
from repro.core.alg_simulation import (
    check_no_symbol_collision,
    compile_gtm_to_alg,
    concrete_symbols,
    run_compiled,
    run_for_all_orderings,
    working_symbol_atoms,
)
from repro.errors import MachineError, is_undefined
from repro.gtm.library import all_machines, parity_gtm
from repro.gtm.run import gtm_query
from repro.model.schema import Database
from repro.model.values import Atom


def _unlimited():
    return Budget(steps=None, objects=None, iterations=None)


def _databases_for(name, schema):
    if name in ("identity", "reverse", "select_eq"):
        data = [set(), {(1, 2)}, {(1, 1), (2, 3), (4, 4)}]
    else:
        data = [set(), {1}, {1, 2}]
    return [Database(schema, {"R": rows}) for rows in data]


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(all_machines()))
    def test_agreement_with_direct_run(self, name):
        gtm, schema, output_type = all_machines()[name]
        program = compile_gtm_to_alg(gtm, schema, output_type)
        for database in _databases_for(name, schema):
            direct = gtm_query(gtm, database, output_type)
            compiled = run_compiled(program, gtm, database, _unlimited())
            assert direct == compiled or (
                is_undefined(direct) and is_undefined(compiled)
            )

    def test_fragment_is_while_without_powerset(self):
        gtm, schema, output_type = parity_gtm()
        program = compile_gtm_to_alg(gtm, schema, output_type)
        info = classify(program, schema)
        assert info.uses_while
        assert info.while_nesting == 1  # unnested!
        assert not info.uses_powerset
        assert info.uses_encode_input

    def test_stuck_machine_is_undefined(self):
        # A machine with no transitions at all gets stuck immediately.
        from repro.gtm.machine import GTM

        stuck = GTM(
            states={"s", "h"}, working=[], constants=[], delta={},
            start="s", halt="h",
        )
        _, schema, output_type = parity_gtm()
        program = compile_gtm_to_alg(stuck, schema, output_type)
        database = Database(schema, {"R": {1}})
        assert is_undefined(run_compiled(program, stuck, database, _unlimited()))


class TestOrderings:
    def test_all_orderings_agree(self):
        gtm, schema, output_type = parity_gtm()
        program = compile_gtm_to_alg(gtm, schema, output_type)
        database = Database(schema, {"R": {1, 2, 3}})
        common = run_for_all_orderings(
            program, gtm, database, max_orders=6, budget_factory=_unlimited
        )
        assert common == gtm_query(gtm, database, output_type)


class TestCollisionGuard:
    def test_working_label_collision_rejected(self):
        gtm, schema, output_type = parity_gtm()
        database = Database(schema, {"R": {"(", "x"}})
        with pytest.raises(MachineError):
            check_no_symbol_collision(gtm, database)

    def test_clean_inputs_pass(self):
        gtm, schema, output_type = parity_gtm()
        database = Database(schema, {"R": {"x", "y"}})
        check_no_symbol_collision(gtm, database)


class TestSymbolSets:
    def test_constants_are_data_not_working(self):
        gtm, _, _ = parity_gtm()
        working = set(working_symbol_atoms(gtm))
        concrete = set(concrete_symbols(gtm))
        assert Atom("even") in concrete
        assert Atom("even") not in working
        assert working < concrete
